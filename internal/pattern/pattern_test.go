package pattern

import (
	"math/bits"
	"testing"
)

// v1 is the paper's Figure 6 view: //a{ID}[//b{ID}//c{ID}]//d{ID}.
const v1Src = `//a{ID}[//b{ID}//c{ID}]//d{ID}`

// v2 is the paper's Figure 7 view: //a{ID}[//b{ID}][//c{ID}]//d{ID}.
const v2Src = `//a{ID}[//b{ID}][//c{ID}]//d{ID}`

func TestParseAndString(t *testing.T) {
	p := MustParse(v1Src)
	if p.Size() != 4 {
		t.Fatalf("size %d", p.Size())
	}
	if got := p.String(); got != v1Src {
		t.Fatalf("String = %q want %q", got, v1Src)
	}
	labels := p.Labels()
	want := []string{"a", "b", "c", "d"}
	for i, l := range want {
		if labels[i] != l {
			t.Fatalf("labels = %v", labels)
		}
	}
	// Structure: a->b, b->c, a->d.
	if p.ParentIndex(1) != 0 || p.ParentIndex(2) != 1 || p.ParentIndex(3) != 0 {
		t.Fatalf("parents: %d %d %d", p.ParentIndex(1), p.ParentIndex(2), p.ParentIndex(3))
	}
	if p.ParentIndex(0) != -1 {
		t.Fatal("root parent should be -1")
	}
}

func TestParsePredicatesAndStores(t *testing.T) {
	p := MustParse(`//a{ID,val}[val="5"]/b{cont}`)
	if !p.Nodes[0].HasPred || p.Nodes[0].PredVal != "5" {
		t.Fatal("predicate lost")
	}
	if !p.Nodes[0].Store.Has(StoreID | StoreVal) {
		t.Fatal("stores lost")
	}
	if p.Nodes[1].Desc {
		t.Fatal("child edge should not be descendant")
	}
	if !p.Nodes[1].Store.Has(StoreCont) {
		t.Fatal("cont store lost")
	}
	reparsed := MustParse(p.String())
	if reparsed.String() != p.String() {
		t.Fatalf("unstable: %q vs %q", p.String(), reparsed.String())
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", "a", "//a{bogus}", "//a[//b", "//a{ID", `//a[val="x"`, "//a trailing"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestIsAncestor(t *testing.T) {
	p := MustParse(v1Src)
	if !p.IsAncestor(0, 2) || !p.IsAncestor(1, 2) || !p.IsAncestor(0, 3) {
		t.Fatal("missing ancestry")
	}
	if p.IsAncestor(1, 3) || p.IsAncestor(2, 1) || p.IsAncestor(3, 0) {
		t.Fatal("false ancestry")
	}
}

func TestSnowcapsV1(t *testing.T) {
	// Figure 6: the snowcaps of //a[//b//c]//d are a, ab, ad, abc, abd,
	// acd is NOT one (c requires b), abcd is. Expected set:
	// {a}, {a,b}, {a,d}, {a,b,c}, {a,b,d}, {a,b,c,d} — 6 snowcaps.
	p := MustParse(v1Src)
	sc := p.Snowcaps()
	if len(sc) != 6 {
		t.Fatalf("got %d snowcaps: %b", len(sc), sc)
	}
	want := map[uint64]bool{
		1:               true, // a
		1 | 1<<1:        true, // ab
		1 | 1<<3:        true, // ad
		1 | 1<<1 | 1<<2: true, // abc
		1 | 1<<1 | 1<<3: true, // abd
		p.FullMask():    true, // abcd
	}
	for _, m := range sc {
		if !want[m] {
			t.Fatalf("unexpected snowcap %b", m)
		}
	}
	// Popcount-sorted.
	for i := 1; i < len(sc); i++ {
		if bits.OnesCount64(sc[i-1]) > bits.OnesCount64(sc[i]) {
			t.Fatal("not sorted by size")
		}
	}
}

func TestSnowcapsV2(t *testing.T) {
	// Figure 7: //a[//b][//c]//d — every node except the root hangs off a,
	// so snowcaps are all subsets containing a: 8 snowcaps.
	p := MustParse(v2Src)
	if got := len(p.Snowcaps()); got != 8 {
		t.Fatalf("got %d snowcaps", got)
	}
}

func TestIsSnowcapAndUpClosed(t *testing.T) {
	p := MustParse(v1Src)
	if p.IsSnowcap(0) {
		t.Fatal("empty set is not a snowcap")
	}
	if !p.IsUpClosed(0) {
		t.Fatal("empty set is upward-closed")
	}
	if p.IsSnowcap(1 << 2) { // {c} without b
		t.Fatal("{c} is not a snowcap")
	}
	if p.IsSnowcap(1 | 1<<2) { // {a,c} without b
		t.Fatal("{a,c} is not a snowcap")
	}
	if !p.IsSnowcap(p.FullMask()) {
		t.Fatal("full pattern is a snowcap")
	}
	if p.IsSnowcap(p.FullMask() << 1) {
		t.Fatal("mask outside pattern accepted")
	}
}

func TestSnowcapChain(t *testing.T) {
	p := MustParse(v1Src)
	chain := p.SnowcapChain()
	if len(chain) != p.Size() {
		t.Fatalf("chain length %d", len(chain))
	}
	for i, m := range chain {
		if bits.OnesCount64(m) != i+1 {
			t.Fatalf("chain[%d] has %d nodes", i, bits.OnesCount64(m))
		}
		if !p.IsSnowcap(m) {
			t.Fatalf("chain[%d]=%b not a snowcap", i, m)
		}
		if i > 0 && chain[i-1]&^m != 0 {
			t.Fatal("chain not nested")
		}
	}
	if chain[len(chain)-1] != p.FullMask() {
		t.Fatal("chain must end at the full pattern")
	}
}

func TestSubPattern(t *testing.T) {
	p := MustParse(v1Src)
	sub, orig := p.SubPattern(1 | 1<<1 | 1<<2) // abc
	if sub.Size() != 3 {
		t.Fatalf("sub size %d", sub.Size())
	}
	if got := sub.String(); got != "//a{ID}//b{ID}//c{ID}" {
		t.Fatalf("sub = %q", got)
	}
	if len(orig) != 3 || orig[0] != 0 || orig[1] != 1 || orig[2] != 2 {
		t.Fatalf("orig = %v", orig)
	}
	sub2, orig2 := p.SubPattern(1 | 1<<3) // ad
	if sub2.String() != "//a{ID}//d{ID}" || orig2[1] != 3 {
		t.Fatalf("sub2 = %q orig2=%v", sub2.String(), orig2)
	}
}

func TestCloneWithStoreTransform(t *testing.T) {
	p := MustParse(v1Src)
	q := p.Clone(func(i int, s Store) Store {
		if i == 3 {
			return s | StoreCont
		}
		return s
	})
	if !q.Nodes[3].Store.Has(StoreCont) {
		t.Fatal("transform not applied")
	}
	if p.Nodes[3].Store.Has(StoreCont) {
		t.Fatal("original mutated")
	}
}

func TestContValIndexes(t *testing.T) {
	p := MustParse(`//a{ID}/b{ID,val}//c{ID,cont}`)
	got := p.ContValIndexes()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("ContValIndexes = %v", got)
	}
	if n := len(MustParse(`//a{ID}`).ContValIndexes()); n != 0 {
		t.Fatalf("expected empty cvn, got %d", n)
	}
}

func TestMaskHelpers(t *testing.T) {
	m := uint64(1 | 1<<3 | 1<<5)
	if !MaskContains(m, 3) || MaskContains(m, 2) {
		t.Fatal("MaskContains wrong")
	}
	idx := MaskIndexes(m)
	if len(idx) != 3 || idx[0] != 0 || idx[1] != 3 || idx[2] != 5 {
		t.Fatalf("MaskIndexes = %v", idx)
	}
}

func TestTooManyNodes(t *testing.T) {
	root := &Node{Label: "r"}
	cur := root
	for i := 0; i < 64; i++ {
		c := &Node{Label: "x", Desc: true}
		cur.Children = []*Node{c}
		cur = c
	}
	if _, err := New(root); err == nil {
		t.Fatal("expected 64-node limit error")
	}
}
