package pattern

import "testing"

// FuzzParse hardens the tree-pattern parser: accepted inputs must print
// stably and produce structurally sound patterns.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		`//a{ID}//b{ID}`,
		`//a{ID,val,cont}[val="5"]/b`,
		`//a[//b{ID}//c]//d{ID}`,
		`/r/@id{ID}`,
		`//~word{ID}`,
		`//a{`, `//a[val=`, `//a[//b`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		printed := p.String()
		p2, err := Parse(printed)
		if err != nil {
			t.Fatalf("print of %q -> %q does not reparse: %v", src, printed, err)
		}
		if p2.String() != printed {
			t.Fatalf("unstable print: %q vs %q", printed, p2.String())
		}
		for i := 1; i < p.Size(); i++ {
			if p.ParentIndex(i) < 0 || p.ParentIndex(i) >= i {
				t.Fatalf("broken preorder parents in %q", printed)
			}
		}
	})
}
