package independence

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"xivm/internal/core"
	"xivm/internal/dtd"
	"xivm/internal/pattern"
	"xivm/internal/update"
	"xivm/internal/xmltree"
)

const auctionDTD = `
site -> people, regions
people -> person*
person -> name, phone?
name -> #text
phone -> #text
regions -> item*
item -> name, description?
description -> #text
`

func TestInsertIndependentByLabels(t *testing.T) {
	p := pattern.MustParse(`//person{ID}`)
	st := update.MustParse(`insert <description>d</description> into /site/regions/item`)
	if got := Check(p, st, nil); got != Independent {
		t.Fatalf("got %v", got)
	}
	// Inserting a person-labeled node may affect.
	st2 := update.MustParse(`insert <person/> into /site/people`)
	if got := Check(p, st2, nil); got != MayAffect {
		t.Fatalf("got %v", got)
	}
}

func TestInsertContentSensitivity(t *testing.T) {
	// The view stores item cont; inserting anything below an item may
	// modify it even when labels are disjoint.
	p := pattern.MustParse(`//item{ID,cont}`)
	st := update.MustParse(`insert <extra/> into /site/regions/item`)
	if got := Check(p, st, nil); got != MayAffect {
		t.Fatalf("got %v", got)
	}
	// Inserting next to items (under regions) cannot touch item content:
	// the target chain is site/regions only.
	st2 := update.MustParse(`insert <extra/> into /site/regions`)
	if got := Check(p, st2, nil); got != Independent {
		t.Fatalf("got %v", got)
	}
}

func TestReplaceAlwaysMayAffect(t *testing.T) {
	// Regression: Replace used to fall through the statement-kind switch
	// with an empty changed-label set and could report Independent — even
	// against a label-disjoint view, the replaced subtree's labels are
	// data-dependent (like a delete's descendants), so only MayAffect is
	// sound.
	p := pattern.MustParse(`//person{ID}`)
	st := update.MustParse(`replace /site/regions/item with <item/>`)
	if got := Check(p, st, nil); got != MayAffect {
		t.Fatalf("replace without DTD: got %v", got)
	}
	g, err := dtd.Parse(auctionDTD)
	if err != nil {
		t.Fatal(err)
	}
	if got := Check(p, st, g); got != MayAffect {
		t.Fatalf("replace with DTD: got %v", got)
	}
}

func TestDeleteNeedsDTD(t *testing.T) {
	p := pattern.MustParse(`//person{ID}`)
	st := update.MustParse(`delete /site/regions/item`)
	if got := Check(p, st, nil); got != MayAffect {
		t.Fatalf("without DTD: got %v", got)
	}
	g := dtd.MustParse(auctionDTD)
	if got := Check(p, st, g); got != Independent {
		t.Fatalf("with DTD: got %v", got)
	}
	// Deleting people obviously affects.
	if got := Check(p, update.MustParse(`delete //person`), g); got != MayAffect {
		t.Fatalf("got %v", got)
	}
	// item has a name descendant — a name view is affected by item deletes.
	nameView := pattern.MustParse(`//item{ID}/name{ID}`)
	if got := Check(nameView, st, g); got != MayAffect {
		t.Fatalf("name view: got %v", got)
	}
}

func TestWildcardViewAlwaysMayAffect(t *testing.T) {
	p := pattern.MustParse(`//*{ID}//b{ID}`)
	st := update.MustParse(`insert <zzz/> into /site`)
	if got := Check(p, st, nil); got != MayAffect {
		t.Fatalf("got %v", got)
	}
}

func TestCopyOfInsertNeedsDTD(t *testing.T) {
	p := pattern.MustParse(`//person{ID}`)
	st := update.MustParse(`insert /site/regions/item into /site/regions`)
	if got := Check(p, st, nil); got != MayAffect {
		t.Fatalf("without DTD: got %v", got)
	}
	g := dtd.MustParse(auctionDTD)
	if got := Check(p, st, g); got != Independent {
		t.Fatalf("with DTD: got %v", got)
	}
}

func TestDescendantAxisChains(t *testing.T) {
	g := dtd.MustParse(auctionDTD)
	// //name matches names under persons AND items; a phone view is not
	// affected by deleting names, but a person{cont} view may be (a name
	// chain passes through person).
	phoneView := pattern.MustParse(`//phone{ID}`)
	if got := Check(phoneView, update.MustParse(`delete //name`), g); got != Independent {
		t.Fatalf("phone view: got %v", got)
	}
	contView := pattern.MustParse(`//person{ID,cont}`)
	if got := Check(contView, update.MustParse(`delete //name`), g); got != MayAffect {
		t.Fatalf("cont view: got %v", got)
	}
}

// permissiveDTD describes the randomXML documents used by the soundness
// property: every label may contain every label.
const permissiveDTD = `
root -> ANY*
a -> ANY*
b -> ANY*
c -> ANY*
d -> ANY*
e -> ANY*
ANY -> a | b | c | d | e | #text
`

// TestSoundness: whenever Check says Independent, applying the statement
// leaves the view bit-identical. Random views, documents and statements.
func TestSoundness(t *testing.T) {
	g := dtd.MustParse(permissiveDTD)
	rng := rand.New(rand.NewSource(77))
	labels := []string{"a", "b", "c", "d", "e"}
	independentSeen := 0
	for trial := 0; trial < 300; trial++ {
		// Random small view over a subset of labels.
		l1, l2 := labels[rng.Intn(5)], labels[rng.Intn(5)]
		store := []string{"{ID}", "{ID,val}", "{ID,cont}"}[rng.Intn(3)]
		src := fmt.Sprintf("//%s{ID}//%s%s", l1, l2, store)
		p := pattern.MustParse(src)

		doc := randomXML(rng)
		d, err := xmltree.ParseString(doc)
		if err != nil {
			t.Fatal(err)
		}
		e := core.NewEngine(d, core.Options{})
		mv, err := e.AddView("v", p)
		if err != nil {
			t.Fatal(err)
		}
		before := mv.View.Rows()

		stmt := randomStatement(rng, labels)
		st := update.MustParse(stmt)
		verdict := Check(p, st, g)
		if _, err := e.ApplyStatement(st); err != nil {
			t.Fatal(err)
		}
		if verdict == Independent {
			independentSeen++
			if !mv.View.EqualRows(before) {
				t.Fatalf("trial %d: %q declared independent of %s but changed the view",
					trial, stmt, src)
			}
		}
	}
	if independentSeen == 0 {
		t.Fatal("soundness test never exercised an Independent verdict")
	}
}

func randomXML(rng *rand.Rand) string {
	labels := []string{"a", "b", "c", "d", "e"}
	var build func(lvl int) string
	build = func(lvl int) string {
		l := labels[rng.Intn(len(labels))]
		var sb strings.Builder
		sb.WriteString("<" + l + ">")
		if lvl < 3 {
			for i := 0; i < rng.Intn(3); i++ {
				sb.WriteString(build(lvl + 1))
			}
		}
		sb.WriteString("</" + l + ">")
		return sb.String()
	}
	return "<root>" + build(1) + build(1) + "</root>"
}

func randomStatement(rng *rand.Rand, labels []string) string {
	l := func() string { return labels[rng.Intn(len(labels))] }
	path := "/root"
	for i := 0; i < 1+rng.Intn(2); i++ {
		if rng.Intn(2) == 0 {
			path += "/" + l()
		} else {
			path += "//" + l()
		}
	}
	if rng.Intn(2) == 0 {
		return "delete " + path
	}
	x, y := l(), l()
	return fmt.Sprintf("insert <%s><%s/></%s> into %s", x, y, x, path)
}

// TestEngineFastPath wires Check into the engine's precheck and verifies
// that skipped propagations never leave a view stale.
func TestEngineFastPath(t *testing.T) {
	g := dtd.MustParse(permissiveDTD)
	rng := rand.New(rand.NewSource(9))
	labels := []string{"a", "b", "c", "d", "e"}
	skips := 0
	for trial := 0; trial < 40; trial++ {
		d, err := xmltree.ParseString(randomXML(rng))
		if err != nil {
			t.Fatal(err)
		}
		e := core.NewEngine(d, core.Options{
			IndependencePrecheck: func(p *pattern.Pattern, st *update.Statement) bool {
				return Check(p, st, g) == Independent
			},
		})
		var mvs []*core.ManagedView
		for _, src := range []string{`//a{ID}//b{ID}`, `//c{ID,val}`, `//d{ID}[//e]`} {
			mv, err := e.AddView(src, pattern.MustParse(src))
			if err != nil {
				t.Fatal(err)
			}
			mvs = append(mvs, mv)
		}
		for step := 0; step < 6; step++ {
			st := update.MustParse(randomStatement(rng, labels))
			rep, err := e.ApplyStatement(st)
			if err != nil {
				t.Fatal(err)
			}
			for _, vr := range rep.Views {
				if vr.Skipped {
					skips++
				}
			}
			for _, mv := range mvs {
				if !e.CheckView(mv) {
					t.Fatalf("trial %d step %d: view %s stale after %s (skipped=%v)",
						trial, step, mv.Name, st, rep.Views)
				}
			}
		}
	}
	if skips == 0 {
		t.Fatal("fast path never fired")
	}
	t.Logf("fast path fired %d times", skips)
}
