// Package independence implements a static view-update independence test in
// the spirit of the work the paper builds on (Benedikt & Cheney; Bidoit et
// al.): given a view's tree pattern and an update statement, decide —
// soundly, before touching any data — whether the update can possibly
// affect the view. Independent updates skip propagation entirely.
//
// The test is conservative: MayAffect never misses a real effect;
// Independent is only returned when provably safe. A DTD sharpens the
// analysis (descendant closures for deletions, ancestor chains across //
// steps); without one, deletions and wildcard-heavy paths usually stay
// MayAffect.
package independence

import (
	"xivm/internal/dtd"
	"xivm/internal/pattern"
	"xivm/internal/update"
	"xivm/internal/xmltree"
	"xivm/internal/xpath"
)

// Verdict is the outcome of the static test.
type Verdict uint8

const (
	// MayAffect means the update could change the view (or the analysis
	// could not prove otherwise).
	MayAffect Verdict = iota
	// Independent means the update provably leaves the view unchanged —
	// rows, stored values/contents and derivation counts.
	Independent
)

func (v Verdict) String() string {
	if v == Independent {
		return "independent"
	}
	return "may-affect"
}

// Check decides whether st can affect the view pattern p. The DTD g is
// optional (nil); with it the analysis can bound the labels deletions can
// remove and the labels that may occur along // steps.
func Check(p *pattern.Pattern, st *update.Statement, g *dtd.DTD) Verdict {
	// Wildcard view nodes match anything; only a fully label-known view is
	// analyzable.
	for _, n := range p.Nodes {
		if n.Label == "*" {
			return MayAffect
		}
	}

	viewLabels := map[string]bool{}
	for _, n := range p.Nodes {
		viewLabels[n.Label] = true
	}

	// Labels of nodes the update adds or removes.
	var changed map[string]bool
	switch st.Kind {
	case update.Insert:
		if st.CopyOf != nil {
			// The copied forest's labels are data-dependent; with a DTD we
			// can bound them by the descendant closure of the source path's
			// possible terminal labels.
			if g == nil {
				return MayAffect
			}
			terms := terminalLabels(*st.CopyOf, g)
			if terms == nil {
				return MayAffect
			}
			changed = descClosure(terms, g)
		} else {
			changed = forestLabels(st.Forest)
		}
	case update.Delete:
		if g == nil {
			return MayAffect // descendants of the targets are unbounded
		}
		terms := terminalLabels(st.Target, g)
		if terms == nil {
			return MayAffect
		}
		changed = descClosure(terms, g)
	default:
		// Replace (and any future kind) is not analyzed: falling through
		// with an empty changed set would wrongly report Independent.
		return MayAffect
	}
	for l := range changed {
		if viewLabels[l] {
			return MayAffect
		}
	}

	// No tuple can appear or disappear. Stored contents (val/cont) and
	// value-predicate truth can still change if an annotated or predicated
	// view node can sit on or above a target. Bound the labels that can
	// occur at-or-above the targets.
	sensitive := map[string]bool{}
	for _, n := range p.Nodes {
		if n.HasPred || n.Store.Has(pattern.StoreVal) || n.Store.Has(pattern.StoreCont) {
			sensitive[n.Label] = true
		}
	}
	if len(sensitive) == 0 {
		return Independent
	}
	anc := ancestorLabels(st.Target, g)
	if anc == nil {
		return MayAffect
	}
	// For deletions the content change happens above the deleted node; for
	// insertions above (or at) the target. Either way the enclosing chain
	// is bounded by anc.
	for l := range anc {
		if sensitive[l] {
			return MayAffect
		}
	}
	return Independent
}

// forestLabels collects element and attribute labels of a literal forest.
func forestLabels(forest []*xmltree.Node) map[string]bool {
	out := map[string]bool{}
	for _, t := range forest {
		xmltree.Walk(t, func(n *xmltree.Node) bool {
			out[n.Label] = true
			return true
		})
	}
	return out
}

// childGraph builds the label → possible-child-labels relation from a DTD.
func childGraph(g *dtd.DTD) map[string]map[string]bool {
	out := map[string]map[string]bool{}
	for _, l := range g.ElementLabels() {
		out[l] = g.PossibleChildren(l)
	}
	return out
}

// terminalLabels bounds the labels a path's result nodes can carry: nil
// means "unknown". The spine is walked over the DTD's child graph; // steps
// traverse any number of edges.
func terminalLabels(p xpath.Path, g *dtd.DTD) map[string]bool {
	if len(p.Steps) == 0 {
		return nil
	}
	last := p.Steps[len(p.Steps)-1]
	switch last.Kind {
	case xpath.TestName:
		return map[string]bool{last.Name: true}
	case xpath.TestAttr:
		return map[string]bool{"@" + last.Name: true}
	case xpath.TestText:
		return map[string]bool{"#text": true}
	}
	// Wildcard terminal: bound by reachability when a DTD is available.
	if g == nil {
		return nil
	}
	reach := chainLabels(p, g)
	return reach
}

// ancestorLabels bounds the labels that can appear at-or-above any node the
// path selects (including the node itself); nil means unknown. Without a
// DTD this is only known for pure /-paths with named steps.
func ancestorLabels(p xpath.Path, g *dtd.DTD) map[string]bool {
	// Sibling steps keep a path pure: a sibling node shares its ancestor
	// chain with the step before it, whose labels are all collected below,
	// so the result is still a sound superset of the at-or-above labels.
	pure := true
	for _, s := range p.Steps {
		if s.Axis == xpath.Descendant || s.Kind == xpath.TestWildcard {
			pure = false
			break
		}
	}
	if pure {
		out := map[string]bool{}
		for _, s := range p.Steps {
			switch s.Kind {
			case xpath.TestName:
				out[s.Name] = true
			case xpath.TestAttr:
				out["@"+s.Name] = true
			case xpath.TestText:
				out["#text"] = true
			}
		}
		return out
	}
	if g == nil {
		return nil
	}
	return chainLabels(p, g)
}

// chainLabels computes, over the DTD's child graph, every label that can
// occur on a root-to-target chain matching the path (labels of matched
// steps plus everything // steps can traverse).
func chainLabels(p xpath.Path, g *dtd.DTD) map[string]bool {
	graph := childGraph(g)
	root := g.DocumentRootLabel()
	if root == "" {
		return nil
	}
	out := map[string]bool{}
	// frontier: labels the previous step could be bound to.
	frontier := map[string]bool{"": true} // "" = virtual document node
	childrenOf := func(l string) map[string]bool {
		if l == "" {
			return map[string]bool{root: true}
		}
		return graph[l]
	}
	stepMatches := func(st xpath.Step, l string) bool {
		switch st.Kind {
		case xpath.TestName:
			return l == st.Name
		case xpath.TestWildcard:
			return l != "" && l[0] != '@' && l != "#text"
		}
		return false
	}
	for _, st := range p.Steps {
		if st.Kind == xpath.TestAttr || st.Kind == xpath.TestText {
			// DTD-as-CFG does not model attributes or mixed text precisely
			// enough to bound chains through them.
			return nil
		}
		if st.Axis != xpath.Child && st.Axis != xpath.Descendant {
			// Sibling axes move sideways, which the child-graph frontier
			// cannot track (it would need the parent's other children);
			// report unknown rather than an under-approximated chain.
			return nil
		}
		next := map[string]bool{}
		if st.Axis == xpath.Child {
			for f := range frontier {
				for c := range childrenOf(f) {
					if stepMatches(st, c) {
						next[c] = true
						out[c] = true
					}
				}
			}
		} else {
			// Descendant: close over the child graph, recording every label
			// traversed (it may lie on the chain).
			seen := map[string]bool{}
			var stack []string
			for f := range frontier {
				for c := range childrenOf(f) {
					if !seen[c] {
						seen[c] = true
						stack = append(stack, c)
					}
				}
			}
			for len(stack) > 0 {
				l := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				out[l] = true
				if stepMatches(st, l) {
					next[l] = true
				}
				for c := range childrenOf(l) {
					if !seen[c] {
						seen[c] = true
						stack = append(stack, c)
					}
				}
			}
		}
		if len(next) == 0 {
			return out // path matches nothing reachable; chain is what we saw
		}
		frontier = next
	}
	return out
}

// descClosure closes a label set over the DTD's child graph.
func descClosure(labels map[string]bool, g *dtd.DTD) map[string]bool {
	graph := childGraph(g)
	out := map[string]bool{}
	var stack []string
	for l := range labels {
		out[l] = true
		stack = append(stack, l)
	}
	for len(stack) > 0 {
		l := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for c := range graph[l] {
			if !out[c] {
				out[c] = true
				stack = append(stack, c)
			}
		}
	}
	return out
}
