package xpath

import (
	"math/rand"
	"testing"

	"xivm/internal/xmltree"
)

// refEval is an independent reference evaluator: instead of navigating, it
// filters the full document node list per context using parent-chain and
// sibling-scan checks, building each step's per-context match group
// explicitly and applying predicates sequentially over it — the same
// semantics the navigating evaluator and the compiled VM implement, reached
// by a different route.
func refEval(d *xmltree.Document, p Path) []*xmltree.Node {
	var all []*xmltree.Node
	xmltree.Walk(d.Root, func(n *xmltree.Node) bool {
		all = append(all, n)
		return true
	})
	matches := func(st Step, n *xmltree.Node) bool {
		switch st.Kind {
		case TestName:
			return n.Kind == xmltree.Element && n.Label == st.Name
		case TestWildcard:
			return n.Kind == xmltree.Element
		case TestAttr:
			return n.Kind == xmltree.Attribute && n.Label == "@"+st.Name
		case TestText:
			return n.Kind == xmltree.Text
		}
		return false
	}
	// group builds the ordered match group of one step for one context
	// node (nil = virtual document node) by scanning the document-ordered
	// node list; preceding-sibling reverses to nearest-first order.
	group := func(st Step, c *xmltree.Node) []*xmltree.Node {
		var g []*xmltree.Node
		for _, n := range all {
			ok := false
			switch st.Axis {
			case Child:
				if c == nil {
					ok = n == d.Root
				} else {
					ok = n.Parent == c
				}
			case Descendant:
				if c == nil {
					ok = true
				} else {
					for a := n.Parent; a != nil; a = a.Parent {
						if a == c {
							ok = true
							break
						}
					}
				}
			case FollowingSibling:
				if c != nil && n.Parent != nil && n.Parent == c.Parent && n != c {
					// After c in its parent's child list?
					seen := false
					for _, ch := range c.Parent.Children {
						if ch == c {
							seen = true
							continue
						}
						if ch == n {
							ok = seen
							break
						}
					}
				}
			case PrecedingSibling:
				if c != nil && n.Parent != nil && n.Parent == c.Parent && n != c {
					for _, ch := range c.Parent.Children {
						if ch == n {
							ok = true
							break
						}
						if ch == c {
							break
						}
					}
				}
			}
			if ok && matches(st, n) {
				g = append(g, n)
			}
		}
		if st.Axis == PrecedingSibling {
			for i, j := 0, len(g)-1; i < j; i, j = i+1, j-1 {
				g[i], g[j] = g[j], g[i]
			}
		}
		return g
	}
	// ctx holds context nodes of the previous step (nil = document).
	contexts := []*xmltree.Node{nil}
	for _, st := range p.Steps {
		set := map[*xmltree.Node]bool{}
		for _, c := range contexts {
			g := group(st, c)
			for _, pr := range st.Preds {
				var kept []*xmltree.Node
				size := len(g)
				for i, n := range g {
					if refPred(n, i+1, size, pr) {
						kept = append(kept, n)
					}
				}
				g = kept
			}
			for _, n := range g {
				set[n] = true
			}
		}
		contexts = contexts[:0]
		for _, n := range all { // document order
			if set[n] {
				contexts = append(contexts, n)
			}
		}
		if len(contexts) == 0 {
			return nil
		}
	}
	return contexts
}

func refPred(ctx *xmltree.Node, pos, size int, e Expr) bool {
	switch x := e.(type) {
	case OrExpr:
		return refPred(ctx, pos, size, x.Left) || refPred(ctx, pos, size, x.Right)
	case AndExpr:
		return refPred(ctx, pos, size, x.Left) && refPred(ctx, pos, size, x.Right)
	case ExistsExpr:
		return len(EvalRelative(ctx, x.Path)) > 0
	case EqExpr:
		for _, n := range EvalRelative(ctx, x.Path) {
			if n.StringValue() == x.Lit {
				return true
			}
		}
	case PosExpr:
		return pos == x.N
	case LastExpr:
		return pos == size
	case CountExpr:
		return x.Op.Holds(len(EvalRelative(ctx, x.Path)), x.N)
	case ContainsExpr:
		for _, n := range EvalRelative(ctx, x.Path) {
			if matchesLit(n.StringValue(), x.Lit, x.Prefix) {
				return true
			}
		}
	}
	return false
}

// TestEvalMatchesReference compares the evaluator with the reference on
// random documents and random paths over the widened grammar.
func TestEvalMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 1200; trial++ {
		src := RandomDoc(rng)
		d, err := xmltree.ParseString(src)
		if err != nil {
			t.Fatal(err)
		}
		expr := RandomQuery(rng)
		p, err := Parse(expr)
		if err != nil {
			t.Fatalf("Parse(%q): %v", expr, err)
		}
		got := Eval(d, p)
		want := refEval(d, p)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %s over %s: %d vs %d nodes", trial, expr, src, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: %s: node %d differs", trial, expr, i)
			}
		}
	}
}
