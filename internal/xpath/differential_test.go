package xpath

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"xivm/internal/xmltree"
)

// refEval is an independent reference evaluator: it filters the full node
// list step by step using parent-chain checks, instead of navigating.
func refEval(d *xmltree.Document, p Path) []*xmltree.Node {
	var all []*xmltree.Node
	xmltree.Walk(d.Root, func(n *xmltree.Node) bool {
		all = append(all, n)
		return true
	})
	matches := func(st Step, n *xmltree.Node) bool {
		switch st.Kind {
		case TestName:
			return n.Kind == xmltree.Element && n.Label == st.Name
		case TestWildcard:
			return n.Kind == xmltree.Element
		case TestAttr:
			return n.Kind == xmltree.Attribute && n.Label == "@"+st.Name
		case TestText:
			return n.Kind == xmltree.Text
		}
		return false
	}
	// ctx holds nodes bound by the previous step (nil element = document).
	ctx := map[*xmltree.Node]bool{nil: true}
	for _, st := range p.Steps {
		next := map[*xmltree.Node]bool{}
		for _, n := range all {
			if !matches(st, n) {
				continue
			}
			ok := false
			if st.Axis == Child {
				parent := n.Parent
				if ctx[parent] {
					ok = true
				}
				if parent == d.Root.Parent && ctx[nil] && n == d.Root {
					ok = true
				}
			} else {
				for a := n.Parent; ; a = a.Parent {
					if ctx[a] {
						ok = true
						break
					}
					if a == nil {
						break
					}
				}
			}
			if !ok {
				continue
			}
			good := true
			for _, pr := range st.Preds {
				if !refPred(n, pr) {
					good = false
					break
				}
			}
			if good {
				next[n] = true
			}
		}
		delete(next, nil)
		ctx = next
	}
	var out []*xmltree.Node
	for _, n := range all { // document order
		if ctx[n] {
			out = append(out, n)
		}
	}
	return out
}

func refPred(ctx *xmltree.Node, e Expr) bool {
	switch x := e.(type) {
	case OrExpr:
		return refPred(ctx, x.Left) || refPred(ctx, x.Right)
	case AndExpr:
		return refPred(ctx, x.Left) && refPred(ctx, x.Right)
	case ExistsExpr:
		return len(EvalRelative(ctx, x.Path)) > 0
	case EqExpr:
		for _, n := range EvalRelative(ctx, x.Path) {
			if n.StringValue() == x.Lit {
				return true
			}
		}
	}
	return false
}

// TestEvalMatchesReference compares the evaluator with the reference on
// random documents and random paths.
func TestEvalMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	labels := []string{"a", "b", "c"}
	var build func(lvl int) string
	build = func(lvl int) string {
		l := labels[rng.Intn(len(labels))]
		s := "<" + l + ">"
		if rng.Intn(4) == 0 {
			s += "5"
		}
		if lvl < 4 {
			for i := 0; i < rng.Intn(3); i++ {
				s += build(lvl + 1)
			}
		}
		return s + "</" + l + ">"
	}
	randPath := func() string {
		var sb strings.Builder
		steps := 1 + rng.Intn(3)
		for i := 0; i < steps; i++ {
			if rng.Intn(2) == 0 {
				sb.WriteString("/")
			} else {
				sb.WriteString("//")
			}
			name := labels[rng.Intn(len(labels))]
			if rng.Intn(5) == 0 {
				name = "*"
			}
			sb.WriteString(name)
			if rng.Intn(4) == 0 {
				switch rng.Intn(3) {
				case 0:
					fmt.Fprintf(&sb, "[%s]", labels[rng.Intn(3)])
				case 1:
					fmt.Fprintf(&sb, "[%s='5']", labels[rng.Intn(3)])
				case 2:
					fmt.Fprintf(&sb, "[%s or %s]", labels[rng.Intn(3)], labels[rng.Intn(3)])
				}
			}
		}
		return sb.String()
	}
	for trial := 0; trial < 400; trial++ {
		src := "<r>" + build(1) + build(1) + "</r>"
		d, err := xmltree.ParseString(src)
		if err != nil {
			t.Fatal(err)
		}
		expr := randPath()
		p, err := Parse(expr)
		if err != nil {
			t.Fatalf("Parse(%q): %v", expr, err)
		}
		got := Eval(d, p)
		want := refEval(d, p)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %s over %s: %d vs %d nodes", trial, expr, src, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: %s: node %d differs", trial, expr, i)
			}
		}
	}
}
