package xpath

import (
	"fmt"
	"math/rand"
	"strings"
)

// RandomDoc generates a small random document over a 3-letter label
// alphabet with occasional text. It drives the differential tests in this
// package and the compiled-vs-interpreted fuzz target in internal/qvm,
// which is why it lives outside the test files.
func RandomDoc(rng *rand.Rand) string {
	labels := []string{"a", "b", "c"}
	var build func(lvl int) string
	build = func(lvl int) string {
		l := labels[rng.Intn(len(labels))]
		s := "<" + l + ">"
		if rng.Intn(4) == 0 {
			s += "5"
		}
		if lvl < 4 {
			for i := 0; i < rng.Intn(3); i++ {
				s += build(lvl + 1)
			}
		}
		return s + "</" + l + ">"
	}
	return "<r>" + build(1) + build(1) + "</r>"
}

// RandomQuery generates a random query over the full widened grammar:
// child/descendant/sibling axes, wildcards, and predicates drawn from
// existence, comparison, position, last(), count(), contains() and
// starts-with().
func RandomQuery(rng *rand.Rand) string {
	labels := []string{"a", "b", "c"}
	var sb strings.Builder
	steps := 1 + rng.Intn(3)
	for i := 0; i < steps; i++ {
		axis := rng.Intn(6)
		switch {
		case i > 0 && axis == 4:
			sb.WriteString("/following-sibling::")
		case i > 0 && axis == 5:
			sb.WriteString("/preceding-sibling::")
		case axis%2 == 1:
			sb.WriteString("//")
		default:
			sb.WriteString("/")
		}
		name := labels[rng.Intn(len(labels))]
		if rng.Intn(5) == 0 {
			name = "*"
		}
		sb.WriteString(name)
		if rng.Intn(3) == 0 {
			switch rng.Intn(8) {
			case 0:
				fmt.Fprintf(&sb, "[%s]", labels[rng.Intn(3)])
			case 1:
				fmt.Fprintf(&sb, "[%s='5']", labels[rng.Intn(3)])
			case 2:
				fmt.Fprintf(&sb, "[%s or %s]", labels[rng.Intn(3)], labels[rng.Intn(3)])
			case 3:
				fmt.Fprintf(&sb, "[%d]", 1+rng.Intn(3))
			case 4:
				sb.WriteString("[last()]")
			case 5:
				fmt.Fprintf(&sb, "[count(%s)%s%d]",
					labels[rng.Intn(3)],
					[]string{"=", "!=", "<", "<=", ">", ">="}[rng.Intn(6)],
					rng.Intn(3))
			case 6:
				fmt.Fprintf(&sb, "[contains(%s,'5')]", labels[rng.Intn(3)])
			case 7:
				fmt.Fprintf(&sb, "[starts-with(text(),'5')]")
			}
		}
	}
	return sb.String()
}
