package xpath

import (
	"strings"
	"testing"

	"xivm/internal/xmltree"
)

const auctionDoc = `<site>
  <people>
    <person id="person0"><name>Ann</name><phone>123</phone><profile income="40k"><age>30</age></profile></person>
    <person id="person1"><name>Bob</name><homepage>http://b</homepage></person>
    <person id="person2"><name>Cy</name></person>
  </people>
  <regions>
    <namerica><item><name>i0</name><description>d0</description></item></namerica>
    <europe><item><name>i1</name></item></europe>
  </regions>
  <open_auctions>
    <open_auction><bidder><increase>4.50</increase></bidder><reserve>10</reserve></open_auction>
    <open_auction><privacy>Yes</privacy><bidder><increase>7.00</increase></bidder><bidder><increase>9.00</increase></bidder></open_auction>
  </open_auctions>
</site>`

func doc(t *testing.T) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString(auctionDoc)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func labels(nodes []*xmltree.Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Label
	}
	return out
}

func evalCount(t *testing.T, d *xmltree.Document, expr string) int {
	t.Helper()
	p, err := Parse(expr)
	if err != nil {
		t.Fatalf("Parse(%q): %v", expr, err)
	}
	return len(Eval(d, p))
}

func TestParseAndStringRoundTrip(t *testing.T) {
	exprs := []string{
		"/site/people/person",
		"//person",
		"/site//item",
		"/site/regions/*/item",
		"/site/people/person[@id]",
		"/site/people/person[phone and homepage]",
		"/site/people/person[phone or homepage]",
		"/site/people/person[address and (phone or homepage) and (creditcard or profile)]",
		"/site/people/person[@id=\"person0\"]",
		"//open_auction[bidder/increase=\"4.50\"]",
		"//person[profile/@income]",
		"//item[description][name]",
	}
	for _, e := range exprs {
		p, err := Parse(e)
		if err != nil {
			t.Fatalf("Parse(%q): %v", e, err)
		}
		p2, err := Parse(p.String())
		if err != nil {
			t.Fatalf("reparse of %q -> %q: %v", e, p.String(), err)
		}
		if p2.String() != p.String() {
			t.Fatalf("unstable print: %q vs %q", p.String(), p2.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"person",               // relative where absolute required
		"/site[",               // unterminated predicate
		"/site/person[@id='x]", // unterminated literal
		"//",                   // missing step
		"/site extra",          // trailing garbage
		"/site/person[]",       // empty predicate
	}
	for _, e := range bad {
		if _, err := Parse(e); err == nil {
			t.Errorf("Parse(%q) should fail", e)
		}
	}
}

func TestEvalChildAndDescendant(t *testing.T) {
	d := doc(t)
	if got := evalCount(t, d, "/site/people/person"); got != 3 {
		t.Fatalf("person count %d", got)
	}
	if got := evalCount(t, d, "//person"); got != 3 {
		t.Fatalf("//person count %d", got)
	}
	if got := evalCount(t, d, "//increase"); got != 3 {
		t.Fatalf("//increase count %d", got)
	}
	if got := evalCount(t, d, "/site//item"); got != 2 {
		t.Fatalf("//item count %d", got)
	}
	if got := evalCount(t, d, "/nomatch"); got != 0 {
		t.Fatalf("nomatch count %d", got)
	}
	if got := evalCount(t, d, "//site"); got != 1 {
		t.Fatalf("//site should match the root, got %d", got)
	}
}

func TestEvalWildcard(t *testing.T) {
	d := doc(t)
	if got := evalCount(t, d, "/site/regions/*/item"); got != 2 {
		t.Fatalf("wildcard item count %d", got)
	}
	if got := evalCount(t, d, "/site/*"); got != 3 {
		t.Fatalf("site children count %d", got)
	}
}

func TestEvalAttributesAndText(t *testing.T) {
	d := doc(t)
	p := MustParse("/site/people/person/@id")
	ids := Eval(d, p)
	if len(ids) != 3 || ids[0].Value != "person0" {
		t.Fatalf("ids = %v", labels(ids))
	}
	txt := Eval(d, MustParse("//name/text()"))
	if len(txt) != 5 {
		t.Fatalf("text nodes %d", len(txt))
	}
}

func TestEvalPredicates(t *testing.T) {
	d := doc(t)
	cases := []struct {
		expr string
		want int
	}{
		{"/site/people/person[@id]", 3},
		{"/site/people/person[phone]", 1},
		{"/site/people/person[phone and homepage]", 0},
		{"/site/people/person[phone or homepage]", 2},
		{"/site/people/person[@id=\"person1\"]", 1},
		{"/site/people/person[@id=\"nobody\"]", 0},
		{"//person[profile/@income]", 1},
		{"//open_auction[bidder/increase=\"4.50\"]", 1},
		{"//open_auction[privacy and bidder]", 1},
		{"//open_auction[bidder or privacy]", 2},
		{"//open_auction[reserve and (bidder or privacy)]", 1},
		{"//item[description][name]", 1},
		{"//item[name='i1']", 1},
		{"//person[name='Ann' and phone]", 1},
	}
	for _, c := range cases {
		if got := evalCount(t, d, c.expr); got != c.want {
			t.Errorf("%s: got %d want %d", c.expr, got, c.want)
		}
	}
}

func TestEvalDocumentOrderAndDedup(t *testing.T) {
	d := doc(t)
	nodes := Eval(d, MustParse("//bidder//increase"))
	if len(nodes) != 3 {
		t.Fatalf("got %d nodes", len(nodes))
	}
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1].ID.Compare(nodes[i].ID) >= 0 {
			t.Fatal("results not in document order")
		}
	}
	// // over // must not duplicate.
	nodes = Eval(d, MustParse("//site//increase"))
	if len(nodes) != 3 {
		t.Fatalf("dedup failed: %d", len(nodes))
	}
}

func TestEvalRelative(t *testing.T) {
	d := doc(t)
	person := Eval(d, MustParse("/site/people/person[@id=\"person0\"]"))[0]
	rel, err := ParseRelative("profile/age")
	if err != nil {
		t.Fatal(err)
	}
	got := EvalRelative(person, rel)
	if len(got) != 1 || got[0].StringValue() != "30" {
		t.Fatalf("relative eval = %v", got)
	}
}

func TestKeywordNotConfusedWithNames(t *testing.T) {
	d, err := xmltree.ParseString(`<r><order>1</order><android>2</android><x><order/><android/></x></r>`)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(Eval(d, MustParse("/r/x[order and android]"))); got != 1 {
		t.Fatalf("and with name-prefix labels: %d", got)
	}
	if got := len(Eval(d, MustParse("/r[order or android]"))); got != 1 {
		t.Fatalf("or with name-prefix labels: %d", got)
	}
}

func TestIsLinearAndDeweySteps(t *testing.T) {
	p := MustParse("/site/people/person")
	if !p.IsLinear() {
		t.Fatal("expected linear")
	}
	if MustParse("/site/people/person[@id]").IsLinear() {
		t.Fatal("predicate path must not be linear")
	}
	steps, ok := p.DeweySteps()
	if !ok || len(steps) != 3 || steps[0].Label != "site" || steps[0].Desc {
		t.Fatalf("DeweySteps = %v ok=%v", steps, ok)
	}
	if _, ok := MustParse("//name/text()").DeweySteps(); ok {
		t.Fatal("text() path should not convert")
	}
	dsteps, ok := MustParse("//person/@id").DeweySteps()
	if !ok || dsteps[1].Label != "@id" {
		t.Fatalf("attr DeweySteps = %v", dsteps)
	}
}

func TestEvalSiblingAxes(t *testing.T) {
	d := doc(t)
	cases := []struct {
		expr string
		want int
	}{
		{"/site/people/following-sibling::regions", 1},
		{"/site/people/following-sibling::*", 2},
		{"/site/open_auctions/preceding-sibling::*", 2},
		{"//bidder/following-sibling::bidder", 1},
		{"//bidder/following-sibling::reserve", 1},
		{"//reserve/preceding-sibling::bidder", 1},
		{"//person/following-sibling::person", 2}, // person1, person2 (deduped)
		{"/site/following-sibling::*", 0},         // root has no siblings
	}
	for _, c := range cases {
		if got := evalCount(t, d, c.expr); got != c.want {
			t.Errorf("%s: got %d want %d", c.expr, got, c.want)
		}
	}
	// preceding-sibling groups are nearest-first: [1] is the closest one.
	got := Eval(d, MustParse("/site/open_auctions/preceding-sibling::*[1]"))
	if len(got) != 1 || got[0].Label != "regions" {
		t.Fatalf("nearest preceding sibling = %v", labels(got))
	}
}

func TestEvalPositional(t *testing.T) {
	d := doc(t)
	cases := []struct {
		expr string
		want int
	}{
		{"/site/people/person[1]", 1},
		{"/site/people/person[3]", 1},
		{"/site/people/person[4]", 0},
		{"/site/people/person[last()]", 1},
		// A descendant step forms one match group per context node; for a
		// leading "//" the context is the virtual document node, so the
		// group spans the whole document (unlike standard abbreviated XPath,
		// where //x[1] re-groups per parent).
		{"//bidder[1]", 1},
		{"//bidder[last()]", 1},
		{"//open_auction/bidder[1]", 2},      // first bidder of each auction
		{"//open_auction/bidder[last()]", 2}, // last bidder of each auction
		{"//person[phone][1]", 1},
		{"//person[homepage][1]", 1},
	}
	for _, c := range cases {
		if got := evalCount(t, d, c.expr); got != c.want {
			t.Errorf("%s: got %d want %d", c.expr, got, c.want)
		}
	}
	// Positions re-index after earlier predicates: person[homepage][1] is
	// Bob (the first person having a homepage), not person0.
	got := Eval(d, MustParse("//person[homepage][1]/@id"))
	if len(got) != 1 || got[0].Value != "person1" {
		t.Fatalf("person[homepage][1] = %v", got)
	}
	last := Eval(d, MustParse("/site/people/person[last()]/@id"))
	if len(last) != 1 || last[0].Value != "person2" {
		t.Fatalf("person[last()] = %v", last)
	}
}

func TestEvalFunctions(t *testing.T) {
	d := doc(t)
	cases := []struct {
		expr string
		want int
	}{
		{"//open_auction[count(bidder)=2]", 1},
		{"//open_auction[count(bidder)=1]", 1},
		{"//open_auction[count(bidder)>=1]", 2},
		{"//open_auction[count(bidder)>2]", 0},
		{"//open_auction[count(bidder)!=2]", 1},
		{"//person[count(profile/age)<1]", 2},
		{"//person[contains(name,'n')]", 1}, // Ann
		{"//person[contains(@id,'person')]", 3},
		{"//person[starts-with(name,'B')]", 1}, // Bob
		{"//person[starts-with(name,'n')]", 0},
		{"//item[contains(description,'d0')]", 1},
	}
	for _, c := range cases {
		if got := evalCount(t, d, c.expr); got != c.want {
			t.Errorf("%s: got %d want %d", c.expr, got, c.want)
		}
	}
}

func TestParseWidenedGrammarErrors(t *testing.T) {
	bad := []string{
		"//following-sibling::a",   // sibling axis after //
		"/a//preceding-sibling::b", // ditto
		"/a[count(b)]",             // count without comparison
		"/a[count(b)=]",            // missing integer
		"/a[contains(b)]",          // missing literal argument
		"/a[starts-with(b,'x'",     // unterminated
		"/a[0x]",                   // digits then name runes: path "0x" is fine, keep it valid? no — 0x is a name
	}
	for _, e := range bad[:6] {
		if _, err := Parse(e); err == nil {
			t.Errorf("Parse(%q) should fail", e)
		}
	}
	// Digits followed by name runes parse as an element name, not a position.
	p, err := Parse("/a[0x]")
	if err != nil {
		t.Fatalf("Parse(/a[0x]): %v", err)
	}
	if _, ok := p.Steps[0].Preds[0].(ExistsExpr); !ok {
		t.Fatalf("/a[0x] predicate = %T, want ExistsExpr", p.Steps[0].Preds[0])
	}
}

func TestWidenedRoundTrip(t *testing.T) {
	exprs := []string{
		"/site/people/following-sibling::regions",
		"/a/preceding-sibling::*[1]",
		"/site/people/person[2]",
		"//bidder[last()]",
		"//open_auction[count(bidder)>=2]",
		"//person[contains(name,\"n\")]",
		"//person[starts-with(@id,\"p\")]",
		"//a[count(//b)!=0]",
		"//a[contains(b/c,\"x\") and 1]",
	}
	for _, e := range exprs {
		p, err := Parse(e)
		if err != nil {
			t.Fatalf("Parse(%q): %v", e, err)
		}
		p2, err := Parse(p.String())
		if err != nil {
			t.Fatalf("reparse of %q -> %q: %v", e, p.String(), err)
		}
		if p2.String() != p.String() {
			t.Fatalf("unstable print: %q vs %q", p.String(), p2.String())
		}
	}
}

func TestSiblingAxesNotDewey(t *testing.T) {
	if _, ok := MustParse("/a/following-sibling::b").DeweySteps(); ok {
		t.Fatal("sibling paths must not convert to Dewey label paths")
	}
	if MustParse("/a/preceding-sibling::b").IsLinear() != true {
		t.Fatal("sibling step without predicates is still linear")
	}
}

func TestNumberLiteral(t *testing.T) {
	d := doc(t)
	p, err := Parse("//open_auction[reserve=10]")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(Eval(d, p)); got != 1 {
		t.Fatalf("numeric literal match: %d", got)
	}
	if !strings.Contains(p.String(), "reserve=\"10\"") {
		t.Fatalf("String() = %q", p.String())
	}
}
