package xpath_test

import (
	"errors"
	"testing"

	"xivm/internal/algebra"
	"xivm/internal/pattern"
	"xivm/internal/xmltree"
	"xivm/internal/xpath"
)

// TestToPatternShapes pins the exact tree pattern each bridgeable query
// translates to, via the pattern grammar's canonical string form.
func TestToPatternShapes(t *testing.T) {
	cases := []struct{ query, want string }{
		{`/site/people/person/name`, `/site/people/person/name{ID,val}`},
		{`//open_auction//increase`, `//open_auction//increase{ID,val}`},
		{`//open_auction//bidder//increase`, `//open_auction//bidder//increase{ID,val}`},
		{`//open_auction[bidder]//initial`, `//open_auction[/bidder]//initial{ID,val}`},
		{`//person[profile and homepage]/name`, `//person[/profile][/homepage]/name{ID,val}`},
		{`//person[profile][homepage]/name`, `//person[/profile][/homepage]/name{ID,val}`},
		{`//person[@id="p0"]/name`, `//person[/@id[val="p0"]]/name{ID,val}`},
		{`//open_auction[initial="5"]//bidder`, `//open_auction[/initial[val="5"]]//bidder{ID,val}`},
		{`//person/@id`, `//person/@id{ID,val}`},
		{`//person[profile//age]/name`, `//person[/profile//age]/name{ID,val}`},
	}
	for _, c := range cases {
		p, err := xpath.Parse(c.query)
		if err != nil {
			t.Fatalf("%s: %v", c.query, err)
		}
		got, err := xpath.ToPattern(p)
		if err != nil {
			t.Fatalf("%s: %v", c.query, err)
		}
		want := pattern.MustParse(c.want)
		if got.String() != want.String() {
			t.Errorf("%s: bridged to %s, want %s", c.query, got, want)
		}
	}
}

// TestToPatternNotExpressible verifies every unsupported construct is
// refused with the typed error (the serving layer's fallback signal).
func TestToPatternNotExpressible(t *testing.T) {
	for _, q := range []string{
		`//person[name or homepage]`,
		`/site//person[1]`,
		`//person[last()]`,
		`//person/following-sibling::person`,
		`//person/preceding-sibling::person`,
		`//*`,
		`//person/*`,
		`//name/text()`,
		`//open_auction[count(bidder)>=2]`,
		`//person[contains(name,"x")]/name`,
		`//person[starts-with(name,"x")]/name`,
		`/site/people/person/@id/foo`,
	} {
		p, err := xpath.Parse(q)
		if err != nil {
			t.Fatalf("%s: parse: %v", q, err)
		}
		_, err = xpath.ToPattern(p)
		var ne *xpath.NotExpressibleError
		if !errors.As(err, &ne) {
			t.Errorf("%s: expected NotExpressibleError, got %v", q, err)
		}
	}
}

// TestBridgeMatchesEval: for every bridgeable query, the pattern's
// materialized result column must equal the tree walk's matches — same
// IDs, same string values, same document order.
func TestBridgeMatchesEval(t *testing.T) {
	doc, err := xmltree.ParseString(`<site><people>` +
		`<person id="p0"><name>Ann</name><profile><age>30</age></profile><homepage>h0</homepage></person>` +
		`<person id="p1"><name>Bob</name><profile><age>41</age></profile></person>` +
		`</people><open_auctions>` +
		`<open_auction id="a0"><initial>5</initial><bidder><increase>3</increase></bidder><bidder><increase>7</increase></bidder></open_auction>` +
		`<open_auction id="a1"><initial>9</initial></open_auction>` +
		`</open_auctions></site>`)
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		`/site`,
		`//site`,
		`/people`, // root label mismatch: empty both ways
		`/site/people/person/name`,
		`//person/name`,
		`//person//name`,
		`//open_auction//increase`,
		`//open_auction/bidder/increase`,
		`//person[profile]/name`,
		`//person[profile and homepage]/name`,
		`//person[@id="p1"]/name`,
		`//open_auction[initial="5"]//increase`,
		`//person/@id`,
		`//person[profile//age]/homepage`,
	}
	for _, qs := range queries {
		p, err := xpath.Parse(qs)
		if err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
		pat, err := xpath.ToPattern(p)
		if err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
		rows := algebra.Materialize(doc, pat)
		want := xpath.Eval(doc, p)
		if len(rows) != len(want) {
			t.Fatalf("%s: pattern %d rows, tree walk %d matches", qs, len(rows), len(want))
		}
		for i := range rows {
			e := rows[i].Entries[0]
			if e.ID.Key() != want[i].ID.Key() {
				t.Fatalf("%s: match %d ID %s != %s", qs, i, e.ID, want[i].ID)
			}
			if e.Val != want[i].StringValue() {
				t.Fatalf("%s: match %d value %q != %q", qs, i, e.Val, want[i].StringValue())
			}
		}
	}
}
