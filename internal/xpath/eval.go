package xpath

import (
	"sort"
	"strings"

	"xivm/internal/xmltree"
)

// Eval evaluates an absolute path on the document, returning matching nodes
// in document order without duplicates.
//
// This interpreted evaluator is the differential oracle for the compiled
// evaluator in internal/qvm: it favors clarity, but the two per-call
// allocation sinks of the original implementation are gone — the per-step
// "seen" map is replaced by Dewey-key-sorted dedup (sort by the cached
// binary key, compact adjacent equals), and the per-call pseudo-root node
// is replaced by a virtual first step evaluated directly against the root.
func Eval(d *xmltree.Document, p Path) []*xmltree.Node {
	if len(p.Steps) == 0 {
		return nil
	}
	// The first step consumes the root itself: "/site" matches a root
	// labeled site; "//x" matches any element labeled x including the root.
	return evalFrom(d.Root, true, p.Steps)
}

// EvalRelative evaluates a relative path from the given context node.
func EvalRelative(ctx *xmltree.Node, p Path) []*xmltree.Node {
	return evalFrom(ctx, false, p.Steps)
}

// evalFrom runs the step sequence. When fromDoc is set, start is the
// document root and the first step is evaluated against the virtual
// document node (child yields the root; descendant yields the root and all
// its descendants; sibling axes yield nothing).
func evalFrom(start *xmltree.Node, fromDoc bool, steps []Step) []*xmltree.Node {
	if len(steps) == 0 {
		return []*xmltree.Node{start}
	}
	cur := []*xmltree.Node{start}
	var next []*xmltree.Node
	for si := range steps {
		st := &steps[si]
		next = next[:0]
		if si == 0 && fromDoc {
			next = evalGroup(next, st, nil, start)
		} else {
			for _, c := range cur {
				next = evalGroup(next, st, c, nil)
			}
		}
		if len(next) == 0 {
			return nil
		}
		dedupDocOrder(&next)
		cur, next = next, cur
	}
	return cur
}

// evalGroup appends one context node's match group for the step, with the
// step's predicates applied sequentially to the group (positional tests see
// 1-based positions within the group as filtered so far). A nil ctx with a
// non-nil docRoot denotes the virtual document node.
func evalGroup(dst []*xmltree.Node, st *Step, ctx, docRoot *xmltree.Node) []*xmltree.Node {
	base := len(dst)
	switch {
	case docRoot != nil:
		switch st.Axis {
		case Child:
			if matchTest(st, docRoot) {
				dst = append(dst, docRoot)
			}
		case Descendant:
			xmltree.Walk(docRoot, func(n *xmltree.Node) bool {
				if matchTest(st, n) {
					dst = append(dst, n)
				}
				return true
			})
		}
		// Sibling axes from the virtual document node match nothing.
	default:
		switch st.Axis {
		case Child:
			for _, ch := range ctx.Children {
				if matchTest(st, ch) {
					dst = append(dst, ch)
				}
			}
		case Descendant:
			xmltree.Walk(ctx, func(n *xmltree.Node) bool {
				if n != ctx && matchTest(st, n) {
					dst = append(dst, n)
				}
				return true
			})
		case FollowingSibling:
			if p := ctx.Parent; p != nil {
				for i := childIndex(p, ctx) + 1; i < len(p.Children); i++ {
					if matchTest(st, p.Children[i]) {
						dst = append(dst, p.Children[i])
					}
				}
			}
		case PrecedingSibling:
			// Nearest-first group order, so [1] is the immediately
			// preceding sibling.
			if p := ctx.Parent; p != nil {
				for i := childIndex(p, ctx) - 1; i >= 0; i-- {
					if matchTest(st, p.Children[i]) {
						dst = append(dst, p.Children[i])
					}
				}
			}
		}
	}
	// Sequential predicate filtering over the group dst[base:].
	for _, pr := range st.Preds {
		group := dst[base:]
		size := len(group)
		kept := base
		for i, n := range group {
			if evalPred(n, i+1, size, pr) {
				dst[kept] = n
				kept++
			}
		}
		dst = dst[:kept]
	}
	return dst
}

// childIndex returns ctx's position among its parent's children.
func childIndex(parent, ctx *xmltree.Node) int {
	for i, ch := range parent.Children {
		if ch == ctx {
			return i
		}
	}
	return -1
}

func matchTest(st *Step, n *xmltree.Node) bool {
	switch st.Kind {
	case TestName:
		return n.Kind == xmltree.Element && n.Label == st.Name
	case TestWildcard:
		return n.Kind == xmltree.Element
	case TestAttr:
		return n.Kind == xmltree.Attribute && n.Label == "@"+st.Name
	case TestText:
		return n.Kind == xmltree.Text
	}
	return false
}

// evalPred evaluates one predicate against a context node at 1-based
// position pos within a match group of the given size.
func evalPred(ctx *xmltree.Node, pos, size int, e Expr) bool {
	switch x := e.(type) {
	case OrExpr:
		return evalPred(ctx, pos, size, x.Left) || evalPred(ctx, pos, size, x.Right)
	case AndExpr:
		return evalPred(ctx, pos, size, x.Left) && evalPred(ctx, pos, size, x.Right)
	case ExistsExpr:
		return len(EvalRelative(ctx, x.Path)) > 0
	case EqExpr:
		for _, n := range EvalRelative(ctx, x.Path) {
			if n.StringValue() == x.Lit {
				return true
			}
		}
		return false
	case PosExpr:
		return pos == x.N
	case LastExpr:
		return pos == size
	case CountExpr:
		return x.Op.Holds(len(EvalRelative(ctx, x.Path)), x.N)
	case ContainsExpr:
		for _, n := range EvalRelative(ctx, x.Path) {
			if matchesLit(n.StringValue(), x.Lit, x.Prefix) {
				return true
			}
		}
		return false
	}
	return false
}

// matchesLit implements the contains / starts-with test.
func matchesLit(s, lit string, prefix bool) bool {
	if prefix {
		return strings.HasPrefix(s, lit)
	}
	return strings.Contains(s, lit)
}

// dedupDocOrder sorts nodes into document order by their cached binary
// Dewey keys and removes adjacent duplicates in place.
func dedupDocOrder(nodes *[]*xmltree.Node) {
	ns := *nodes
	if len(ns) < 2 {
		return
	}
	sort.Slice(ns, func(i, j int) bool {
		return ns[i].ID.Key() < ns[j].ID.Key()
	})
	out := ns[:1]
	for _, n := range ns[1:] {
		if n != out[len(out)-1] {
			out = append(out, n)
		}
	}
	*nodes = out
}
