package xpath

import (
	"sort"

	"xivm/internal/xmltree"
)

// Eval evaluates an absolute path on the document, returning matching nodes
// in document order without duplicates.
func Eval(d *xmltree.Document, p Path) []*xmltree.Node {
	// The first step consumes the root itself: "/site" matches a root
	// labeled site; "//x" matches any element labeled x including the root.
	return evalSteps(rootContext(d), p.Steps)
}

// rootContext returns a pseudo-context holding the document root's parent
// position: evaluating a child step from it yields the root element.
func rootContext(d *xmltree.Document) []*xmltree.Node {
	return []*xmltree.Node{{Kind: xmltree.Element, Label: "#doc", Children: []*xmltree.Node{d.Root}}}
}

// EvalRelative evaluates a relative path from the given context node.
func EvalRelative(ctx *xmltree.Node, p Path) []*xmltree.Node {
	return evalSteps([]*xmltree.Node{ctx}, p.Steps)
}

func evalSteps(ctx []*xmltree.Node, steps []Step) []*xmltree.Node {
	cur := ctx
	for _, st := range steps {
		var next []*xmltree.Node
		seen := map[*xmltree.Node]bool{}
		add := func(n *xmltree.Node) {
			if !seen[n] {
				seen[n] = true
				next = append(next, n)
			}
		}
		for _, c := range cur {
			switch st.Axis {
			case Child:
				for _, ch := range c.Children {
					if matchTest(st, ch) {
						add(ch)
					}
				}
			case Descendant:
				xmltree.Walk(c, func(n *xmltree.Node) bool {
					if n != c && matchTest(st, n) {
						add(n)
					}
					return true
				})
			}
		}
		if len(st.Preds) > 0 {
			filtered := next[:0]
			for _, n := range next {
				ok := true
				for _, pr := range st.Preds {
					if !evalPred(n, pr) {
						ok = false
						break
					}
				}
				if ok {
					filtered = append(filtered, n)
				}
			}
			next = filtered
		}
		cur = next
		if len(cur) == 0 {
			return nil
		}
	}
	sortDocOrder(cur)
	return cur
}

func matchTest(st Step, n *xmltree.Node) bool {
	switch st.Kind {
	case TestName:
		return n.Kind == xmltree.Element && n.Label == st.Name
	case TestWildcard:
		return n.Kind == xmltree.Element
	case TestAttr:
		return n.Kind == xmltree.Attribute && n.Label == "@"+st.Name
	case TestText:
		return n.Kind == xmltree.Text
	}
	return false
}

func evalPred(ctx *xmltree.Node, e Expr) bool {
	switch x := e.(type) {
	case OrExpr:
		return evalPred(ctx, x.Left) || evalPred(ctx, x.Right)
	case AndExpr:
		return evalPred(ctx, x.Left) && evalPred(ctx, x.Right)
	case ExistsExpr:
		return len(EvalRelative(ctx, x.Path)) > 0
	case EqExpr:
		for _, n := range EvalRelative(ctx, x.Path) {
			if n.StringValue() == x.Lit {
				return true
			}
		}
		return false
	}
	return false
}

func sortDocOrder(nodes []*xmltree.Node) {
	sort.Slice(nodes, func(i, j int) bool {
		return nodes[i].ID.Compare(nodes[j].ID) < 0
	})
}
