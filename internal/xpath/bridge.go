package xpath

import (
	"fmt"

	"xivm/internal/pattern"
)

// This file bridges the XPath dialect onto the paper's tree-pattern dialect
// P, so ad-hoc queries can be answered from materialized views by
// internal/rewrite. Only a subset of XPath is expressible as a tree
// pattern: child and descendant axes over named steps, existence and
// value-equality predicates (which become pattern branches), and
// conjunctions thereof. Everything else — disjunction, positional tests,
// count()/contains()/starts-with(), wildcards, text() tests, sibling axes —
// is reported with a typed NotExpressibleError so callers can fall back to
// direct evaluation.

// NotExpressibleError reports that a path has no tree-pattern equivalent,
// naming the construct that broke the translation.
type NotExpressibleError struct {
	Reason string
}

func (e *NotExpressibleError) Error() string {
	return "xpath: not expressible as a tree pattern: " + e.Reason
}

func notExpressible(format string, args ...any) error {
	return &NotExpressibleError{Reason: fmt.Sprintf(format, args...)}
}

// ToPattern converts an absolute path to an equivalent tree pattern whose
// result node (the last spine step) stores ID and val — exactly what a
// serving layer needs to rebuild (id, label, value) matches from view rows.
//
// The translation preserves match semantics node-for-node:
//
//   - a leading /x anchors the pattern root (only the document root
//     matches), a leading //x leaves it descendant-anchored;
//   - each predicate [p] becomes a branch child of its step's node —
//     existence paths as plain chains, path="lit" comparisons as chains
//     whose final node carries the pattern's [val=lit] filter, and "and"
//     as multiple branches;
//   - attribute steps map onto the store's "@name" labels, but only as
//     leaves (attributes have no element children for deeper steps to
//     bind).
//
// The distinct result-node IDs of the pattern's embeddings, in document
// order, equal Eval's match list — rewrite projection dedups by ID and
// sorts by Dewey key, which is order-isomorphic to document order.
func ToPattern(p Path) (*pattern.Pattern, error) {
	if len(p.Steps) == 0 {
		return nil, notExpressible("empty path")
	}
	var root, cur *pattern.Node
	for i := range p.Steps {
		st := &p.Steps[i]
		n, err := stepNode(st, len(p.Steps)-1-i)
		if err != nil {
			return nil, err
		}
		if cur == nil {
			root = n
		} else {
			cur.Children = append(cur.Children, n)
		}
		cur = n
	}
	cur.Store = pattern.StoreID | pattern.StoreVal
	pat, err := pattern.New(root)
	if err != nil {
		// Only the 64-node limit can fail here; treat it as inexpressible so
		// callers fall back rather than erroring out.
		return nil, notExpressible("%v", err)
	}
	return pat, nil
}

// stepNode converts one step (axis, test, predicates) to a pattern node.
// stepsBelow is how many spine steps follow it — attribute steps are only
// expressible as leaves.
func stepNode(st *Step, stepsBelow int) (*pattern.Node, error) {
	n := &pattern.Node{}
	switch st.Axis {
	case Child:
		n.Desc = false
	case Descendant:
		n.Desc = true
	default:
		return nil, notExpressible("sibling axis %q", stepName(*st))
	}
	switch st.Kind {
	case TestName:
		n.Label = st.Name
	case TestAttr:
		if stepsBelow > 0 || len(st.Preds) > 0 {
			return nil, notExpressible("attribute step @%s with steps or predicates below it", st.Name)
		}
		n.Label = "@" + st.Name
	case TestWildcard:
		return nil, notExpressible("wildcard step")
	default:
		return nil, notExpressible("text() step")
	}
	for _, pred := range st.Preds {
		if err := addPredicate(n, pred); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// addPredicate grafts one predicate expression onto ctx as pattern
// branches (or a [val=c] filter on ctx itself).
func addPredicate(ctx *pattern.Node, e Expr) error {
	switch x := e.(type) {
	case AndExpr:
		if err := addPredicate(ctx, x.Left); err != nil {
			return err
		}
		return addPredicate(ctx, x.Right)
	case ExistsExpr:
		branch, _, err := relChain(x.Path)
		if err != nil {
			return err
		}
		ctx.Children = append(ctx.Children, branch)
		return nil
	case EqExpr:
		if len(x.Path.Steps) == 0 {
			// ".=lit" filters the context node itself.
			return setValPred(ctx, x.Lit)
		}
		branch, leaf, err := relChain(x.Path)
		if err != nil {
			return err
		}
		if err := setValPred(leaf, x.Lit); err != nil {
			return err
		}
		ctx.Children = append(ctx.Children, branch)
		return nil
	case OrExpr:
		return notExpressible("disjunction")
	case PosExpr, LastExpr:
		return notExpressible("positional predicate")
	case CountExpr:
		return notExpressible("count() predicate")
	case ContainsExpr:
		if x.Prefix {
			return notExpressible("starts-with() predicate")
		}
		return notExpressible("contains() predicate")
	default:
		return notExpressible("unknown predicate %T", e)
	}
}

// setValPred installs [val=lit] on n, rejecting a second conflicting value
// (two different equalities on one node are unsatisfiable in XPath terms
// only when the node is a leaf — the pattern dialect cannot tell, so the
// translation refuses rather than guess).
func setValPred(n *pattern.Node, lit string) error {
	if n.HasPred && n.PredVal != lit {
		return notExpressible("conflicting value predicates %q and %q", n.PredVal, lit)
	}
	n.HasPred = true
	n.PredVal = lit
	return nil
}

// relChain converts a predicate's relative path to a branch chain,
// returning its first node (to graft onto the context) and its last (for a
// value filter). Nested predicates recurse through stepNode.
func relChain(p Path) (first, last *pattern.Node, err error) {
	if len(p.Steps) == 0 {
		return nil, nil, notExpressible("empty predicate path")
	}
	for i := range p.Steps {
		n, err := stepNode(&p.Steps[i], len(p.Steps)-1-i)
		if err != nil {
			return nil, nil, err
		}
		if first == nil {
			first = n
		} else {
			last.Children = append(last.Children, n)
		}
		last = n
	}
	return first, last, nil
}
