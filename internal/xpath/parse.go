package xpath

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// MustParse parses an XPath expression and panics on error; intended for
// statically known paths in tests and workload definitions.
func MustParse(s string) Path {
	p, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Parse parses an XPath{/,//,*,[]} expression. The path must be absolute
// (start with / or //).
func Parse(s string) (Path, error) {
	p := &parser{src: s}
	p.skipSpace()
	if !strings.HasPrefix(p.rest(), "/") {
		return Path{}, fmt.Errorf("xpath: path %q must be absolute", s)
	}
	path, err := p.parsePath(false)
	if err != nil {
		return Path{}, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return Path{}, fmt.Errorf("xpath: trailing input %q", p.rest())
	}
	return path, nil
}

// ParseRelative parses a relative path (as used inside predicates), e.g.
// "profile/@income" or "bidder/increase".
func ParseRelative(s string) (Path, error) {
	p := &parser{src: s}
	path, err := p.parsePath(true)
	if err != nil {
		return Path{}, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return Path{}, fmt.Errorf("xpath: trailing input %q", p.rest())
	}
	return path, nil
}

type parser struct {
	src string
	pos int
}

func (p *parser) rest() string { return p.src[p.pos:] }

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n') {
		p.pos++
	}
}

func (p *parser) eat(tok string) bool {
	if strings.HasPrefix(p.rest(), tok) {
		p.pos += len(tok)
		return true
	}
	return false
}

func (p *parser) peekByte() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

// parsePath parses a sequence of steps. If relative is true the first step
// may omit its leading slash (meaning a child step from the context node).
func (p *parser) parsePath(relative bool) (Path, error) {
	var path Path
	first := true
	for {
		p.skipSpace()
		axis := Child
		switch {
		case p.eat("//"):
			axis = Descendant
		case p.eat("/"):
			axis = Child
		default:
			if !(first && relative) {
				if first {
					return Path{}, fmt.Errorf("xpath: expected / or // at %q", p.rest())
				}
				return path, nil
			}
		}
		step, err := p.parseStep(axis)
		if err != nil {
			return Path{}, err
		}
		path.Steps = append(path.Steps, step)
		first = false
		p.skipSpace()
		if p.pos >= len(p.src) || (p.peekByte() != '/') {
			return path, nil
		}
	}
}

func (p *parser) parseStep(axis Axis) (Step, error) {
	p.skipSpace()
	// Explicit sibling axes replace the abbreviated axis: they only make
	// sense after "/" (a "//" prefix would compose descendant-or-self with
	// a sibling move, which the dialect does not define).
	switch {
	case p.eat("following-sibling::"):
		if axis != Child {
			return Step{}, fmt.Errorf("xpath: following-sibling:: must follow /, not //")
		}
		axis = FollowingSibling
	case p.eat("preceding-sibling::"):
		if axis != Child {
			return Step{}, fmt.Errorf("xpath: preceding-sibling:: must follow /, not //")
		}
		axis = PrecedingSibling
	}
	st := Step{Axis: axis}
	switch {
	case p.eat("text()"):
		st.Kind = TestText
	case p.eat("*"):
		st.Kind = TestWildcard
	case p.eat("@"):
		name, err := p.parseName()
		if err != nil {
			return st, err
		}
		st.Kind = TestAttr
		st.Name = name
	default:
		name, err := p.parseName()
		if err != nil {
			return st, err
		}
		st.Kind = TestName
		st.Name = name
	}
	for {
		p.skipSpace()
		if !p.eat("[") {
			return st, nil
		}
		e, err := p.parseOr()
		if err != nil {
			return st, err
		}
		p.skipSpace()
		if !p.eat("]") {
			return st, fmt.Errorf("xpath: missing ] at %q", p.rest())
		}
		st.Preds = append(st.Preds, e)
	}
}

func isNameRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '.' || r == ':'
}

func (p *parser) parseName() (string, error) {
	start := p.pos
	for p.pos < len(p.src) {
		r := rune(p.src[p.pos])
		if !isNameRune(r) {
			break
		}
		p.pos++
	}
	if p.pos == start {
		return "", fmt.Errorf("xpath: expected name at %q", p.rest())
	}
	return p.src[start:p.pos], nil
}

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if !p.eatKeyword("or") {
			return left, nil
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = OrExpr{Left: left, Right: right}
	}
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if !p.eatKeyword("and") {
			return left, nil
		}
		right, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		left = AndExpr{Left: left, Right: right}
	}
}

// eatKeyword consumes a keyword only when followed by a non-name character,
// so that an element named "order" is not misread as "or".
func (p *parser) eatKeyword(kw string) bool {
	if !strings.HasPrefix(p.rest(), kw) {
		return false
	}
	after := p.pos + len(kw)
	if after < len(p.src) && isNameRune(rune(p.src[after])) {
		return false
	}
	p.pos = after
	return true
}

func (p *parser) parsePrimary() (Expr, error) {
	p.skipSpace()
	if p.eat("(") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if !p.eat(")") {
			return nil, fmt.Errorf("xpath: missing ) at %q", p.rest())
		}
		return e, nil
	}
	// A bare integer is a positional test. Digits followed by further name
	// runes fall through to the path case (labels may contain digits).
	if n, ok := p.tryInteger(); ok {
		return PosExpr{N: n}, nil
	}
	// Function-call primaries: an identifier immediately followed by "(".
	if p.eat("last()") {
		return LastExpr{}, nil
	}
	if p.eat("count(") {
		return p.parseCount()
	}
	if p.eat("contains(") {
		return p.parseContains(false)
	}
	if p.eat("starts-with(") {
		return p.parseContains(true)
	}
	// A relative path, optionally compared to a literal.
	path, err := p.parsePath(true)
	if err != nil {
		return nil, err
	}
	if len(path.Steps) == 0 {
		return nil, fmt.Errorf("xpath: expected predicate path at %q", p.rest())
	}
	p.skipSpace()
	if p.eat("=") {
		lit, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return EqExpr{Path: path, Lit: lit}, nil
	}
	return ExistsExpr{Path: path}, nil
}

// tryInteger consumes a run of digits only when it forms a whole token (the
// next rune is not a name rune), so element names starting with digits keep
// parsing as paths.
func (p *parser) tryInteger() (int, bool) {
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start || (p.pos < len(p.src) && isNameRune(rune(p.src[p.pos]))) {
		p.pos = start
		return 0, false
	}
	n, err := strconv.Atoi(p.src[start:p.pos])
	if err != nil {
		p.pos = start
		return 0, false
	}
	return n, true
}

// parseCount finishes "count(" path ")" cmp int.
func (p *parser) parseCount() (Expr, error) {
	path, err := p.parsePath(true)
	if err != nil {
		return nil, err
	}
	if len(path.Steps) == 0 {
		return nil, fmt.Errorf("xpath: count() needs a path at %q", p.rest())
	}
	p.skipSpace()
	if !p.eat(")") {
		return nil, fmt.Errorf("xpath: missing ) in count at %q", p.rest())
	}
	p.skipSpace()
	var op CmpOp
	switch {
	case p.eat("!="):
		op = CmpNe
	case p.eat("<="):
		op = CmpLe
	case p.eat(">="):
		op = CmpGe
	case p.eat("<"):
		op = CmpLt
	case p.eat(">"):
		op = CmpGt
	case p.eat("="):
		op = CmpEq
	default:
		return nil, fmt.Errorf("xpath: count() needs a comparison at %q", p.rest())
	}
	p.skipSpace()
	n, ok := p.tryInteger()
	if !ok {
		return nil, fmt.Errorf("xpath: count() compares to an integer, at %q", p.rest())
	}
	return CountExpr{Path: path, Op: op, N: n}, nil
}

// parseContains finishes "contains(" path "," literal ")" (or starts-with).
func (p *parser) parseContains(prefix bool) (Expr, error) {
	path, err := p.parsePath(true)
	if err != nil {
		return nil, err
	}
	if len(path.Steps) == 0 {
		return nil, fmt.Errorf("xpath: expected path argument at %q", p.rest())
	}
	p.skipSpace()
	if !p.eat(",") {
		return nil, fmt.Errorf("xpath: missing , at %q", p.rest())
	}
	lit, err := p.parseLiteral()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if !p.eat(")") {
		return nil, fmt.Errorf("xpath: missing ) at %q", p.rest())
	}
	return ContainsExpr{Path: path, Lit: lit, Prefix: prefix}, nil
}

func (p *parser) parseLiteral() (string, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return "", fmt.Errorf("xpath: expected literal at end of input")
	}
	q := p.src[p.pos]
	if q == '\'' || q == '"' {
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] != q {
			p.pos++
		}
		if p.pos >= len(p.src) {
			return "", fmt.Errorf("xpath: unterminated string literal")
		}
		lit := p.src[start:p.pos]
		p.pos++
		return lit, nil
	}
	// Bare number literal.
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if (c < '0' || c > '9') && c != '.' && c != '-' {
			break
		}
		p.pos++
	}
	if p.pos == start {
		return "", fmt.Errorf("xpath: expected literal at %q", p.rest())
	}
	return p.src[start:p.pos], nil
}
