// Package xpath implements the XPath{/,//,*,[]} dialect used by the paper
// for view paths and update target paths: child, descendant and sibling
// axes, name and wildcard tests, attribute and text() steps, and predicates
// built from relative-path existence tests, value comparisons, positional
// tests ([1], [last()]), a small function library (count, contains,
// starts-with), and / or combinations.
package xpath

import (
	"strconv"
	"strings"

	"xivm/internal/dewey"
)

// Axis selects how a step relates to the previous one.
type Axis uint8

const (
	// Child is the parent-child axis ("/").
	Child Axis = iota
	// Descendant is the ancestor-descendant axis ("//"), meaning
	// descendant-or-self followed by child, as in standard XPath
	// abbreviated syntax.
	Descendant
	// FollowingSibling selects siblings after the context node, in
	// document order ("/following-sibling::x").
	FollowingSibling
	// PrecedingSibling selects siblings before the context node. The
	// step's match group is ordered nearest-first (reverse document
	// order), so [1] is the immediately preceding sibling, as in standard
	// XPath; final results are still reported in document order.
	PrecedingSibling
)

// TestKind distinguishes node tests.
type TestKind uint8

const (
	// TestName matches elements with a specific label.
	TestName TestKind = iota
	// TestWildcard matches any element ("*").
	TestWildcard
	// TestAttr matches an attribute ("@name").
	TestAttr
	// TestText matches text nodes ("text()").
	TestText
)

// Step is one location step. Predicates apply sequentially to the step's
// per-context match group: each predicate filters the group, and positional
// tests see positions within the group as filtered by the predicates before
// them ("a[b][2]" is the second a-child having a b).
type Step struct {
	Axis  Axis
	Kind  TestKind
	Name  string // label for TestName, attribute name for TestAttr
	Preds []Expr
}

// Path is an XPath expression: a sequence of steps. Absolute paths are
// evaluated from the document root; in predicates, paths are relative to the
// context node.
type Path struct {
	Steps []Step
}

// Expr is a predicate expression.
type Expr interface{ exprNode() }

// OrExpr is a disjunction.
type OrExpr struct{ Left, Right Expr }

// AndExpr is a conjunction.
type AndExpr struct{ Left, Right Expr }

// ExistsExpr tests whether a relative path has at least one result.
type ExistsExpr struct{ Path Path }

// EqExpr compares the string value of a relative path's results with a
// literal: true when any result's string value equals it.
type EqExpr struct {
	Path Path
	Lit  string
}

// PosExpr is a positional predicate "[n]": true when the context node is
// the n-th node (1-based) of the step's match group.
type PosExpr struct{ N int }

// LastExpr is "[last()]": true when the context node is the last node of
// the step's match group.
type LastExpr struct{}

// CmpOp is a comparison operator for count() predicates.
type CmpOp uint8

const (
	CmpEq CmpOp = iota // =
	CmpNe              // !=
	CmpLt              // <
	CmpLe              // <=
	CmpGt              // >
	CmpGe              // >=
)

// Holds reports whether "a op b" is true.
func (o CmpOp) Holds(a, b int) bool {
	switch o {
	case CmpNe:
		return a != b
	case CmpLt:
		return a < b
	case CmpLe:
		return a <= b
	case CmpGt:
		return a > b
	case CmpGe:
		return a >= b
	}
	return a == b
}

func (o CmpOp) String() string {
	switch o {
	case CmpNe:
		return "!="
	case CmpLt:
		return "<"
	case CmpLe:
		return "<="
	case CmpGt:
		return ">"
	case CmpGe:
		return ">="
	}
	return "="
}

// CountExpr is "count(path) op n": the number of nodes the relative path
// selects, compared to an integer.
type CountExpr struct {
	Path Path
	Op   CmpOp
	N    int
}

// ContainsExpr is "contains(path, lit)" (or "starts-with" when Prefix):
// true when any node the relative path selects has a string value
// containing (or starting with) the literal.
type ContainsExpr struct {
	Path   Path
	Lit    string
	Prefix bool
}

func (OrExpr) exprNode()       {}
func (AndExpr) exprNode()      {}
func (ExistsExpr) exprNode()   {}
func (EqExpr) exprNode()       {}
func (PosExpr) exprNode()      {}
func (LastExpr) exprNode()     {}
func (CountExpr) exprNode()    {}
func (ContainsExpr) exprNode() {}

// String renders the path back to XPath syntax.
func (p Path) String() string {
	var b strings.Builder
	for _, s := range p.Steps {
		switch s.Axis {
		case Descendant:
			b.WriteString("//")
		case FollowingSibling:
			b.WriteString("/following-sibling::")
		case PrecedingSibling:
			b.WriteString("/preceding-sibling::")
		default:
			b.WriteString("/")
		}
		b.WriteString(stepName(s))
		for _, pr := range s.Preds {
			b.WriteByte('[')
			writeExpr(&b, pr)
			b.WriteByte(']')
		}
	}
	return b.String()
}

func stepName(s Step) string {
	switch s.Kind {
	case TestWildcard:
		return "*"
	case TestAttr:
		return "@" + s.Name
	case TestText:
		return "text()"
	}
	return s.Name
}

// relString renders a relative path as it appears inside a predicate: a
// leading child step drops its slash, but a leading descendant step keeps
// its "//" (trimming one slash would reparse as a child step).
func relString(p Path) string {
	s := p.String()
	if strings.HasPrefix(s, "/") && !strings.HasPrefix(s, "//") {
		return s[1:]
	}
	return s
}

// writeLiteral quotes a literal with whichever quote it does not contain.
// Literals produced by the parser never contain their own delimiter, so
// printed expressions always reparse.
func writeLiteral(b *strings.Builder, lit string) {
	q := byte('"')
	if strings.IndexByte(lit, '"') >= 0 {
		q = '\''
	}
	b.WriteByte(q)
	b.WriteString(lit)
	b.WriteByte(q)
}

func writeExpr(b *strings.Builder, e Expr) {
	switch x := e.(type) {
	case OrExpr:
		writeExpr(b, x.Left)
		b.WriteString(" or ")
		writeExpr(b, x.Right)
	case AndExpr:
		// "and" binds tighter than "or", so only disjunction operands need
		// explicit parentheses to reparse identically.
		writeAndOperand(b, x.Left)
		b.WriteString(" and ")
		writeAndOperand(b, x.Right)
	case ExistsExpr:
		b.WriteString(relString(x.Path))
	case EqExpr:
		b.WriteString(relString(x.Path))
		b.WriteString("=")
		writeLiteral(b, x.Lit)
	case PosExpr:
		b.WriteString(strconv.Itoa(x.N))
	case LastExpr:
		b.WriteString("last()")
	case CountExpr:
		b.WriteString("count(")
		b.WriteString(relString(x.Path))
		b.WriteString(")")
		b.WriteString(x.Op.String())
		b.WriteString(strconv.Itoa(x.N))
	case ContainsExpr:
		if x.Prefix {
			b.WriteString("starts-with(")
		} else {
			b.WriteString("contains(")
		}
		b.WriteString(relString(x.Path))
		b.WriteString(",")
		writeLiteral(b, x.Lit)
		b.WriteString(")")
	}
}

func writeAndOperand(b *strings.Builder, e Expr) {
	if _, isOr := e.(OrExpr); isOr {
		b.WriteByte('(')
		writeExpr(b, e)
		b.WriteByte(')')
		return
	}
	writeExpr(b, e)
}

// IsLinear reports whether the path has no predicates (class L of the
// paper's update taxonomy).
func (p Path) IsLinear() bool {
	for _, s := range p.Steps {
		if len(s.Preds) > 0 {
			return false
		}
	}
	return true
}

// DeweySteps converts the path's spine (ignoring predicates) to the label
// path condition used by the Path Filter primitive. It returns false if the
// path contains attribute or text() steps, which have no label-path
// equivalent for elements, or sibling axes, which label paths cannot
// express.
func (p Path) DeweySteps() ([]dewey.PathStep, bool) {
	out := make([]dewey.PathStep, 0, len(p.Steps))
	for _, s := range p.Steps {
		if s.Axis != Child && s.Axis != Descendant {
			return nil, false
		}
		switch s.Kind {
		case TestName:
			out = append(out, dewey.PathStep{Label: s.Name, Desc: s.Axis == Descendant})
		case TestWildcard:
			out = append(out, dewey.PathStep{Label: "*", Desc: s.Axis == Descendant})
		case TestAttr:
			out = append(out, dewey.PathStep{Label: "@" + s.Name, Desc: s.Axis == Descendant})
		default:
			return nil, false
		}
	}
	return out, true
}
