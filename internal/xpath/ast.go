// Package xpath implements the XPath{/,//,*,[]} dialect used by the paper
// for view paths and update target paths: child and descendant axes, name
// and wildcard tests, attribute and text() steps, and predicates built from
// relative-path existence tests, value comparisons, and / or combinations.
package xpath

import (
	"strings"

	"xivm/internal/dewey"
)

// Axis selects how a step relates to the previous one.
type Axis uint8

const (
	// Child is the parent-child axis ("/").
	Child Axis = iota
	// Descendant is the ancestor-descendant axis ("//"), meaning
	// descendant-or-self followed by child, as in standard XPath
	// abbreviated syntax.
	Descendant
)

// TestKind distinguishes node tests.
type TestKind uint8

const (
	// TestName matches elements with a specific label.
	TestName TestKind = iota
	// TestWildcard matches any element ("*").
	TestWildcard
	// TestAttr matches an attribute ("@name").
	TestAttr
	// TestText matches text nodes ("text()").
	TestText
)

// Step is one location step.
type Step struct {
	Axis  Axis
	Kind  TestKind
	Name  string // label for TestName, attribute name for TestAttr
	Preds []Expr
}

// Path is an XPath expression: a sequence of steps. Absolute paths are
// evaluated from the document root; in predicates, paths are relative to the
// context node.
type Path struct {
	Steps []Step
}

// Expr is a predicate expression.
type Expr interface{ exprNode() }

// OrExpr is a disjunction.
type OrExpr struct{ Left, Right Expr }

// AndExpr is a conjunction.
type AndExpr struct{ Left, Right Expr }

// ExistsExpr tests whether a relative path has at least one result.
type ExistsExpr struct{ Path Path }

// EqExpr compares the string value of a relative path's first result with a
// literal.
type EqExpr struct {
	Path Path
	Lit  string
}

func (OrExpr) exprNode()     {}
func (AndExpr) exprNode()    {}
func (ExistsExpr) exprNode() {}
func (EqExpr) exprNode()     {}

// String renders the path back to XPath syntax.
func (p Path) String() string {
	var b strings.Builder
	for _, s := range p.Steps {
		if s.Axis == Descendant {
			b.WriteString("//")
		} else {
			b.WriteString("/")
		}
		b.WriteString(stepName(s))
		for _, pr := range s.Preds {
			b.WriteByte('[')
			writeExpr(&b, pr)
			b.WriteByte(']')
		}
	}
	return b.String()
}

func stepName(s Step) string {
	switch s.Kind {
	case TestWildcard:
		return "*"
	case TestAttr:
		return "@" + s.Name
	case TestText:
		return "text()"
	}
	return s.Name
}

func writeExpr(b *strings.Builder, e Expr) {
	switch x := e.(type) {
	case OrExpr:
		writeExpr(b, x.Left)
		b.WriteString(" or ")
		writeExpr(b, x.Right)
	case AndExpr:
		// "and" binds tighter than "or", so only disjunction operands need
		// explicit parentheses to reparse identically.
		writeAndOperand(b, x.Left)
		b.WriteString(" and ")
		writeAndOperand(b, x.Right)
	case ExistsExpr:
		b.WriteString(strings.TrimPrefix(x.Path.String(), "/"))
	case EqExpr:
		b.WriteString(strings.TrimPrefix(x.Path.String(), "/"))
		b.WriteString("=\"")
		b.WriteString(x.Lit)
		b.WriteString("\"")
	}
}

func writeAndOperand(b *strings.Builder, e Expr) {
	if _, isOr := e.(OrExpr); isOr {
		b.WriteByte('(')
		writeExpr(b, e)
		b.WriteByte(')')
		return
	}
	writeExpr(b, e)
}

// IsLinear reports whether the path has no predicates (class L of the
// paper's update taxonomy).
func (p Path) IsLinear() bool {
	for _, s := range p.Steps {
		if len(s.Preds) > 0 {
			return false
		}
	}
	return true
}

// DeweySteps converts the path's spine (ignoring predicates) to the label
// path condition used by the Path Filter primitive. It returns false if the
// path contains attribute or text() steps, which have no label-path
// equivalent for elements.
func (p Path) DeweySteps() ([]dewey.PathStep, bool) {
	out := make([]dewey.PathStep, 0, len(p.Steps))
	for _, s := range p.Steps {
		switch s.Kind {
		case TestName:
			out = append(out, dewey.PathStep{Label: s.Name, Desc: s.Axis == Descendant})
		case TestWildcard:
			out = append(out, dewey.PathStep{Label: "*", Desc: s.Axis == Descendant})
		case TestAttr:
			out = append(out, dewey.PathStep{Label: "@" + s.Name, Desc: s.Axis == Descendant})
		default:
			return nil, false
		}
	}
	return out, true
}
