package xpath

import "testing"

// FuzzParse hardens the XPath parser: any input must either error or
// produce a path whose printed form reparses to the same print (stability),
// without panicking.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"/site/people/person",
		"//a[b and (c or d)]",
		`//x[@id="v"]`,
		"/a/*/b/text()",
		"//item[description][name='i1']",
		"/a[b=1.5]//c",
		"/a/following-sibling::b/preceding-sibling::*",
		"/a[2]/b[last()]",
		"//a[count(b)>=2][1]",
		"//a[contains(text(),'x') or starts-with(@id,'p')]",
		"/a[count(//b)!=0]",
		"//", "[", "/a[", "/a]b", `/a[@x='`,
		"//following-sibling::a", "/a[count(b)]", "/a[contains(b)]",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		printed := p.String()
		p2, err := Parse(printed)
		if err != nil {
			t.Fatalf("print of %q -> %q does not reparse: %v", src, printed, err)
		}
		if p2.String() != printed {
			t.Fatalf("unstable print: %q vs %q", printed, p2.String())
		}
	})
}
