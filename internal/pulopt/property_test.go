package pulopt

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"xivm/internal/core"
	"xivm/internal/pattern"
	"xivm/internal/xmltree"
)

// TestReducePropertyEquivalence: for random operation sequences over random
// documents, applying the reduced sequence produces the same final document
// and the same maintained view as applying the original sequence.
func TestReducePropertyEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for trial := 0; trial < 60; trial++ {
		src := randomTree(rng)

		build := func() (*core.Engine, *core.ManagedView, []*xmltree.Node) {
			d, err := xmltree.ParseString(src)
			if err != nil {
				t.Fatal(err)
			}
			e := core.NewEngine(d, core.Options{})
			mv, err := e.AddView("v", pattern.MustParse(`//a{ID}//b{ID}`))
			if err != nil {
				t.Fatal(err)
			}
			var nodes []*xmltree.Node
			xmltree.Walk(d.Root, func(n *xmltree.Node) bool {
				if n.Kind == xmltree.Element && n.Parent != nil {
					nodes = append(nodes, n)
				}
				return true
			})
			return e, mv, nodes
		}

		mkOps := func(nodes []*xmltree.Node) Seq {
			var ops Seq
			for i := 0; i < 2+rng.Intn(8); i++ {
				n := nodes[rng.Intn(len(nodes))]
				if rng.Intn(3) == 0 {
					ops = append(ops, Op{Kind: Del, Target: n.ID})
				} else {
					f, _ := xmltree.ParseForest(fmt.Sprintf("<%s/>", []string{"a", "b", "c"}[rng.Intn(3)]))
					ops = append(ops, Op{Kind: InsLast, Target: n.ID, Forest: f})
				}
			}
			return ops
		}

		e1, v1, nodes1 := build()
		ops := mkOps(nodes1)
		if _, err := Apply(e1, ops); err != nil {
			t.Fatal(err)
		}

		e2, v2, nodes2 := build()
		// Rebuild identical ops against e2's (identical) IDs.
		ops2 := make(Seq, len(ops))
		for i, op := range ops {
			// IDs are deterministic across both engines, so targets align.
			_ = nodes2
			ops2[i] = op
		}
		reduced := Reduce(ops2)
		if len(reduced) > len(ops2) {
			t.Fatal("reduction grew the sequence")
		}
		if _, err := Apply(e2, reduced); err != nil {
			t.Fatal(err)
		}

		if e1.Doc.String() != e2.Doc.String() {
			t.Fatalf("trial %d: documents differ\nraw:     %s\nreduced: %s\nops: %v\nreduced ops: %v",
				trial, e1.Doc, e2.Doc, ops, reduced)
		}
		r1, r2 := v1.View.Rows(), v2.View.Rows()
		if len(r1) != len(r2) {
			t.Fatalf("trial %d: views differ (%d vs %d rows)", trial, len(r1), len(r2))
		}
		for i := range r1 {
			if r1[i].Key() != r2[i].Key() || r1[i].Count != r2[i].Count {
				t.Fatalf("trial %d: view row %d differs", trial, i)
			}
		}
		if !e2.CheckView(v2) {
			t.Fatalf("trial %d: reduced-sequence view inconsistent with recomputation", trial)
		}
	}
}

func randomTree(rng *rand.Rand) string {
	labels := []string{"a", "b", "c"}
	var build func(lvl int) string
	build = func(lvl int) string {
		l := labels[rng.Intn(len(labels))]
		var sb strings.Builder
		sb.WriteString("<" + l + ">")
		if lvl < 3 {
			for i := 0; i < 1+rng.Intn(2); i++ {
				sb.WriteString(build(lvl + 1))
			}
		}
		sb.WriteString("</" + l + ">")
		return sb.String()
	}
	return "<r>" + build(1) + build(1) + "</r>"
}

// TestIntegrateNoFalseConflicts: disjoint PULs integrate without conflicts
// and concatenate in order.
func TestIntegrateNoFalseConflicts(t *testing.T) {
	d := mustDoc(t, `<a><c><b/></c><f/></a>`)
	c := d.Root.ElementChildren()[0]
	f := d.Root.ElementChildren()[1]
	forest1, _ := xmltree.ParseForest(`<x/>`)
	forest2, _ := xmltree.ParseForest(`<y/>`)
	d1 := Seq{{Kind: InsLast, Target: c.ID, Forest: forest1}}
	d2 := Seq{{Kind: InsLast, Target: f.ID, Forest: forest2}}
	merged, conflicts := Integrate(d1, d2)
	if len(conflicts) != 0 {
		t.Fatalf("false conflicts: %v", conflicts)
	}
	if len(merged) != 2 || !merged[0].Target.Equal(c.ID) {
		t.Fatalf("merged = %v", merged)
	}
}

// TestAggregateDisjointConcatenates: aggregation of unrelated PULs is plain
// concatenation.
func TestAggregateDisjointConcatenates(t *testing.T) {
	d := mustDoc(t, `<a><c/><f/></a>`)
	c := d.Root.ElementChildren()[0]
	f := d.Root.ElementChildren()[1]
	forest, _ := xmltree.ParseForest(`<x/>`)
	d1 := Seq{{Kind: InsLast, Target: c.ID, Forest: forest}}
	d2 := Seq{{Kind: Del, Target: f.ID}}
	got := Aggregate(d1, d2)
	if len(got) != 2 || got[0].Kind != InsLast || got[1].Kind != Del {
		t.Fatalf("got %v", got)
	}
}
