package pulopt

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"xivm/internal/core"
	"xivm/internal/pattern"
	"xivm/internal/xmltree"
)

// TestReducePropertyEquivalence: for random operation sequences over random
// documents, applying the reduced sequence produces the same final document
// and the same maintained view as applying the original sequence.
func TestReducePropertyEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for trial := 0; trial < 60; trial++ {
		src := randomTree(rng)

		build := func() (*core.Engine, *core.ManagedView, []*xmltree.Node) {
			d, err := xmltree.ParseString(src)
			if err != nil {
				t.Fatal(err)
			}
			e := core.NewEngine(d, core.Options{})
			mv, err := e.AddView("v", pattern.MustParse(`//a{ID}//b{ID}`))
			if err != nil {
				t.Fatal(err)
			}
			var nodes []*xmltree.Node
			xmltree.Walk(d.Root, func(n *xmltree.Node) bool {
				if n.Kind == xmltree.Element && n.Parent != nil {
					nodes = append(nodes, n)
				}
				return true
			})
			return e, mv, nodes
		}

		mkOps := func(nodes []*xmltree.Node) Seq {
			var ops Seq
			for i := 0; i < 2+rng.Intn(8); i++ {
				n := nodes[rng.Intn(len(nodes))]
				if rng.Intn(3) == 0 {
					ops = append(ops, Op{Kind: Del, Target: n.ID})
				} else {
					f, _ := xmltree.ParseForest(fmt.Sprintf("<%s/>", []string{"a", "b", "c"}[rng.Intn(3)]))
					ops = append(ops, Op{Kind: InsLast, Target: n.ID, Forest: f})
				}
			}
			return ops
		}

		e1, v1, nodes1 := build()
		ops := mkOps(nodes1)
		if _, err := Apply(e1, ops); err != nil {
			t.Fatal(err)
		}

		e2, v2, nodes2 := build()
		// Rebuild identical ops against e2's (identical) IDs.
		ops2 := make(Seq, len(ops))
		for i, op := range ops {
			// IDs are deterministic across both engines, so targets align.
			_ = nodes2
			ops2[i] = op
		}
		reduced := Reduce(ops2)
		if len(reduced) > len(ops2) {
			t.Fatal("reduction grew the sequence")
		}
		if _, err := Apply(e2, reduced); err != nil {
			t.Fatal(err)
		}

		if e1.Doc.String() != e2.Doc.String() {
			t.Fatalf("trial %d: documents differ\nraw:     %s\nreduced: %s\nops: %v\nreduced ops: %v",
				trial, e1.Doc, e2.Doc, ops, reduced)
		}
		r1, r2 := v1.View.Rows(), v2.View.Rows()
		if len(r1) != len(r2) {
			t.Fatalf("trial %d: views differ (%d vs %d rows)", trial, len(r1), len(r2))
		}
		for i := range r1 {
			if r1[i].Key() != r2[i].Key() || r1[i].Count != r2[i].Count {
				t.Fatalf("trial %d: view row %d differs", trial, i)
			}
		}
		if !e2.CheckView(v2) {
			t.Fatalf("trial %d: reduced-sequence view inconsistent with recomputation", trial)
		}
	}
}

// TestAggregatePropertyEquivalence: for random ∆1/∆2 pairs over random
// documents — with ∆2 generated against the post-∆1 document so its targets
// can reference nodes ∆1 inserted — applying Aggregate(∆1,∆2) produces the
// same final document and views as applying ∆1 then ∆2.
func TestAggregatePropertyEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	for trial := 0; trial < 80; trial++ {
		src := randomTree(rng)

		build := func() (*core.Engine, *core.ManagedView) {
			d, err := xmltree.ParseString(src)
			if err != nil {
				t.Fatal(err)
			}
			e := core.NewEngine(d, core.Options{})
			mv, err := e.AddView("v", pattern.MustParse(`//a{ID}//b{ID}`))
			if err != nil {
				t.Fatal(err)
			}
			return e, mv
		}
		elements := func(e *core.Engine) []*xmltree.Node {
			var nodes []*xmltree.Node
			xmltree.Walk(e.Doc.Root, func(n *xmltree.Node) bool {
				if n.Kind == xmltree.Element && n.Parent != nil {
					nodes = append(nodes, n)
				}
				return true
			})
			return nodes
		}
		mkOps := func(nodes []*xmltree.Node) Seq {
			var ops Seq
			for i := 0; i < 1+rng.Intn(5); i++ {
				n := nodes[rng.Intn(len(nodes))]
				if rng.Intn(4) == 0 {
					ops = append(ops, Op{Kind: Del, Target: n.ID})
				} else {
					l := []string{"a", "b", "c"}[rng.Intn(3)]
					f, _ := xmltree.ParseForest(fmt.Sprintf("<%s><b/></%s>", l, l))
					ops = append(ops, Op{Kind: InsLast, Target: n.ID, Forest: f})
				}
			}
			return ops
		}

		// Sequential reference: ∆1, then ∆2 generated against the result.
		e1, v1 := build()
		d1 := mkOps(elements(e1))
		if _, err := Apply(e1, d1); err != nil {
			t.Fatal(err)
		}
		post := elements(e1)
		if len(post) == 0 {
			continue
		}
		d2 := mkOps(post)
		if _, err := Apply(e1, d2); err != nil {
			t.Fatal(err)
		}

		// Aggregated run on a fresh, identical engine.
		e2, v2 := build()
		agg := Aggregate(d1, d2)
		if _, err := Apply(e2, agg); err != nil {
			t.Fatal(err)
		}

		if e1.Doc.String() != e2.Doc.String() {
			t.Fatalf("trial %d: documents differ\nsequential: %s\naggregated: %s\nd1: %v\nd2: %v\nagg: %v",
				trial, e1.Doc, e2.Doc, d1, d2, agg)
		}
		r1, r2 := v1.View.Rows(), v2.View.Rows()
		if len(r1) != len(r2) {
			t.Fatalf("trial %d: views differ (%d vs %d rows)", trial, len(r1), len(r2))
		}
		for i := range r1 {
			if r1[i].Key() != r2[i].Key() || r1[i].Count != r2[i].Count {
				t.Fatalf("trial %d: view row %d differs", trial, i)
			}
		}
		if !e2.CheckView(v2) {
			t.Fatalf("trial %d: aggregated-sequence view inconsistent with recomputation", trial)
		}
	}
}

// TestReduceBlocksMergeAcrossSubtreeOps pins the I5 constraint: a deletion
// inside the insertion target's subtree between two insertions on the same
// node must block the merge — commuting the second insertion past the
// deletion would change which node is the target's last child when the
// forest lands.
func TestReduceBlocksMergeAcrossSubtreeOps(t *testing.T) {
	d := mustDoc(t, `<r><a><b/><c/></a></r>`)
	a := d.Root.ElementChildren()[0]
	c := a.ElementChildren()[1]
	ops := Seq{
		{Kind: InsLast, Target: a.ID, Forest: forest(t, `<x/>`)},
		{Kind: Del, Target: c.ID},
		{Kind: InsLast, Target: a.ID, Forest: forest(t, `<y/>`)},
	}
	got := Reduce(ops)
	if len(got) != 3 {
		t.Fatalf("merge across an intervening subtree deletion: %v", got)
	}
	// An intervening op on an unrelated node must not block the merge.
	other := d.Root
	ops2 := Seq{
		{Kind: InsLast, Target: a.ID, Forest: forest(t, `<x/>`)},
		{Kind: InsLast, Target: other.ID, Forest: forest(t, `<z/>`)},
		{Kind: InsLast, Target: a.ID, Forest: forest(t, `<y/>`)},
	}
	got2 := Reduce(ops2)
	if len(got2) != 2 || len(got2[0].Forest) != 2 {
		t.Fatalf("compatible merge did not fire: %v", got2)
	}
}

// TestAggregateLeavesInputsIntact is the D6 aliasing regression: Aggregate
// must leave both input sequences byte-identical — in particular the splice
// of a ∆2 operation into a ∆1 parameter tree must land in a copy, never in
// the forest the caller still holds.
func TestAggregateLeavesInputsIntact(t *testing.T) {
	d := mustDoc(t, `<r><a/><e/></r>`)
	a := d.Root.ElementChildren()[0]
	e := d.Root.ElementChildren()[1]
	d1 := Seq{
		{Kind: InsLast, Target: a.ID, Forest: forest(t, `<d><b/></d>`)},
		{Kind: InsLast, Target: e.ID, Forest: forest(t, `<c/>`)},
	}
	insideID := a.ID.Child("d", nil).Child("b", nil)
	d2 := Seq{
		{Kind: InsLast, Target: insideID, Forest: forest(t, `<x/>`)}, // D6 splice
		{Kind: InsLast, Target: e.ID, Forest: forest(t, `<y/>`)},     // A1/A2 merge
	}
	fingerprint := func(s Seq) string {
		var sb strings.Builder
		for _, op := range s {
			sb.WriteString(op.String())
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	before1, before2 := fingerprint(d1), fingerprint(d2)
	got := Aggregate(d1, d2)
	if fingerprint(d1) != before1 {
		t.Fatalf("Aggregate mutated ∆1:\nbefore: %safter:  %s", before1, fingerprint(d1))
	}
	if fingerprint(d2) != before2 {
		t.Fatalf("Aggregate mutated ∆2:\nbefore: %safter:  %s", before2, fingerprint(d2))
	}
	// The splice and the merge must still have happened — in the result.
	if len(got) != 2 {
		t.Fatalf("aggregate result: %v", got)
	}
	if got[0].Forest[0].Content() != "<d><b><x/></b></d>" {
		t.Fatalf("D6 splice missing from result: %v", got[0])
	}
	if len(got[1].Forest) != 2 {
		t.Fatalf("A1/A2 merge missing from result: %v", got[1])
	}
}

func randomTree(rng *rand.Rand) string {
	labels := []string{"a", "b", "c"}
	var build func(lvl int) string
	build = func(lvl int) string {
		l := labels[rng.Intn(len(labels))]
		var sb strings.Builder
		sb.WriteString("<" + l + ">")
		if lvl < 3 {
			for i := 0; i < 1+rng.Intn(2); i++ {
				sb.WriteString(build(lvl + 1))
			}
		}
		sb.WriteString("</" + l + ">")
		return sb.String()
	}
	return "<r>" + build(1) + build(1) + "</r>"
}

// TestIntegrateNoFalseConflicts: disjoint PULs integrate without conflicts
// and concatenate in order.
func TestIntegrateNoFalseConflicts(t *testing.T) {
	d := mustDoc(t, `<a><c><b/></c><f/></a>`)
	c := d.Root.ElementChildren()[0]
	f := d.Root.ElementChildren()[1]
	forest1, _ := xmltree.ParseForest(`<x/>`)
	forest2, _ := xmltree.ParseForest(`<y/>`)
	d1 := Seq{{Kind: InsLast, Target: c.ID, Forest: forest1}}
	d2 := Seq{{Kind: InsLast, Target: f.ID, Forest: forest2}}
	merged, conflicts := Integrate(d1, d2)
	if len(conflicts) != 0 {
		t.Fatalf("false conflicts: %v", conflicts)
	}
	if len(merged) != 2 || !merged[0].Target.Equal(c.ID) {
		t.Fatalf("merged = %v", merged)
	}
}

// TestAggregateDisjointConcatenates: aggregation of unrelated PULs is plain
// concatenation.
func TestAggregateDisjointConcatenates(t *testing.T) {
	d := mustDoc(t, `<a><c/><f/></a>`)
	c := d.Root.ElementChildren()[0]
	f := d.Root.ElementChildren()[1]
	forest, _ := xmltree.ParseForest(`<x/>`)
	d1 := Seq{{Kind: InsLast, Target: c.ID, Forest: forest}}
	d2 := Seq{{Kind: Del, Target: f.ID}}
	got := Aggregate(d1, d2)
	if len(got) != 2 || got[0].Kind != InsLast || got[1].Kind != Del {
		t.Fatalf("got %v", got)
	}
}
