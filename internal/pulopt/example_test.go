package pulopt_test

import (
	"fmt"

	"xivm/internal/pulopt"
	"xivm/internal/xmltree"
)

// ExampleReduce shows the O1/O3/I5 reduction rules collapsing a redundant
// operation sequence.
func ExampleReduce() {
	doc, _ := xmltree.ParseString(`<r><a><b/></a></r>`)
	a := doc.Root.ElementChildren()[0]
	b := a.ElementChildren()[0]
	f1, _ := xmltree.ParseForest(`<x/>`)
	f2, _ := xmltree.ParseForest(`<y/>`)

	ops := pulopt.Seq{
		{Kind: pulopt.InsLast, Target: b.ID, Forest: f1}, // killed by O3 (ancestor delete)
		{Kind: pulopt.InsLast, Target: a.ID, Forest: f1}, // killed by O1 (same-node delete)
		{Kind: pulopt.Del, Target: a.ID},
		{Kind: pulopt.InsLast, Target: doc.Root.ID, Forest: f1},
		{Kind: pulopt.InsLast, Target: doc.Root.ID, Forest: f2}, // merged by I5
	}
	reduced := pulopt.Reduce(ops)
	fmt.Println(len(ops), "->", len(reduced))
	for _, op := range reduced {
		fmt.Println(op)
	}
	// Output:
	// 5 -> 2
	// del(r1.a1)
	// ins↘(r1, <x/><y/>)
}
