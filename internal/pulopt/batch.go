package pulopt

import (
	"errors"
	"fmt"
	"sort"

	"xivm/internal/core"
	"xivm/internal/dewey"
	"xivm/internal/update"
	"xivm/internal/xmltree"
	"xivm/internal/xpath"
)

// ErrNotBatchable reports that a statement batch cannot be translated to
// one combined delta with sequential-equivalence guaranteed; the caller
// falls back to per-statement application. Test with errors.Is.
var ErrNotBatchable = errors.New("pulopt: batch not translatable")

// NotBatchableError carries the specific gate that rejected the batch (its
// Reason feeds the server's fallback counters). It matches ErrNotBatchable
// under errors.Is.
type NotBatchableError struct {
	Reason string // "replace", "copyof", "path", "label-overlap", "compute", "conflict", "reduce"
	Detail string
}

func (e *NotBatchableError) Error() string {
	return fmt.Sprintf("pulopt: batch not translatable (%s): %s", e.Reason, e.Detail)
}

// Is makes errors.Is(err, ErrNotBatchable) true for every gate rejection.
func (e *NotBatchableError) Is(target error) bool { return target == ErrNotBatchable }

func notBatchable(reason, format string, args ...any) error {
	return &NotBatchableError{Reason: reason, Detail: fmt.Sprintf(format, args...)}
}

// BatchPlan is a batch of statements translated to one combined delta, as
// Section 5 composes PULs: every target resolved against the current
// document (the batch's D0), the per-statement deltas aggregated and
// reduced, and the result split into per-kind units the engine propagates
// once each. PlanBatch only returns a plan when applying Units in order is
// equivalent to applying Statements one at a time.
type BatchPlan struct {
	Statements []*update.Statement
	// PerStatement holds each statement's D0-resolved node-level PUL (with
	// targets sequential execution would no longer see filtered out). They
	// back the per-statement repair path when a batch must be completed
	// statement-wise after a partial WAL journal.
	PerStatement []*update.PUL
	// Ops is the concatenated elementary sequence (FromStatements) and
	// Reduced the aggregated+reduced combined delta actually split into
	// Units.
	Ops, Reduced Seq
	// Units are the propagation units: one combined PUL per maximal run of
	// consecutive same-kind statements, in statement order.
	Units []core.BatchPUL
}

// PlanBatch translates a queued statement batch into one combined delta.
//
// Resolving every statement against D0 is only equivalent to sequential
// execution when no statement's targets depend on an earlier statement's
// effects, so the plan is gated conservatively:
//
//   - No Replace statements, and no CopyOf source beyond the first
//     statement (both resolve data, not just targets, against the store).
//   - Every non-first statement's target path is name-steps only — no
//     predicates, wildcards, text() or attribute tests — so an earlier
//     insertion or deletion cannot flip what the path matches...
//   - ...except by creating nodes the path's labels name, so a non-first
//     path whose labels intersect the labels of any earlier statement's
//     inserted forest rejects the batch.
//   - Delete targets that an earlier statement's deletion already covers
//     are dropped (sequential execution would not see them), and the
//     per-statement deltas must integrate with no IO/LO/NLO conflict —
//     which in particular rejects any insertion into a node an earlier
//     statement deletes.
//
// Past the gates the aggregated+reduced delta is provably the plain
// concatenation of the per-statement deltas (every merge rule is blocked by
// the same conditions), which the plan verifies before splitting into
// units; any divergence rejects the batch rather than risking
// non-equivalence.
func PlanBatch(e *core.Engine, stmts []*update.Statement) (*BatchPlan, error) {
	if len(stmts) == 0 {
		return nil, notBatchable("compute", "empty batch")
	}
	plan := &BatchPlan{
		Statements:   stmts,
		PerStatement: make([]*update.PUL, len(stmts)),
	}
	seqs := make([]Seq, len(stmts))
	inserted := map[string]bool{} // element labels inserted by earlier statements
	var deleted []dewey.ID        // deletion roots kept so far, in statement order

	for j, st := range stmts {
		if st.Kind == update.Replace {
			return nil, notBatchable("replace", "statement %d is a replace", j)
		}
		if j > 0 {
			if st.CopyOf != nil {
				return nil, notBatchable("copyof", "statement %d copies from the document", j)
			}
			names, ok := simpleNamePath(st.Target)
			if !ok {
				return nil, notBatchable("path", "statement %d target %s has non-name steps or predicates", j, st.Target.String())
			}
			for _, name := range names {
				if inserted[name] {
					return nil, notBatchable("label-overlap", "statement %d target step %q matches a label inserted earlier in the batch", j, name)
				}
			}
		}
		pul, err := update.ComputePUL(e.Doc, st)
		if err != nil {
			// Per-statement application reproduces the same error with
			// proper attribution.
			return nil, notBatchable("compute", "statement %d: %v", j, err)
		}
		switch pul.Kind {
		case update.Delete:
			kept := pul.Deletes[:0]
			for _, n := range pul.Deletes {
				if coveredBy(deleted, n.ID) {
					continue // already gone when this statement would run
				}
				kept = append(kept, n)
			}
			pul.Deletes = kept
			for _, n := range kept {
				deleted = append(deleted, n.ID)
			}
		case update.Insert:
			for _, pi := range pul.Inserts {
				for _, t := range pi.Trees {
					collectLabels(t, inserted)
				}
			}
		}
		plan.PerStatement[j] = pul
		seqs[j] = FromPUL(pul)
		plan.Ops = append(plan.Ops, seqs[j]...)
	}

	// Parallel-integration conflict rules across every statement pair: any
	// IO/LO/NLO hit means the batch's effect could depend on order beyond
	// what the gates above prove safe.
	for i := 0; i < len(seqs); i++ {
		for j := i + 1; j < len(seqs); j++ {
			if _, conflicts := Integrate(seqs[i], seqs[j]); len(conflicts) > 0 {
				return nil, notBatchable("conflict", "statements %d/%d: %v", i, j, conflicts[0])
			}
		}
	}

	// Aggregate the per-statement deltas in order, then reduce. Post-gate
	// neither pass may change the sequence (merges shrink it); verify
	// rather than trust the argument.
	agg := Seq{}
	for _, s := range seqs {
		agg = Aggregate(agg, s)
	}
	plan.Reduced = Reduce(agg)
	if len(plan.Reduced) != len(plan.Ops) {
		return nil, notBatchable("reduce", "combined delta reduced from %d to %d ops — order dependence suspected", len(plan.Ops), len(plan.Reduced))
	}

	// Split into units: one combined PUL per maximal run of consecutive
	// same-kind statements, preserving statement order so every inserted
	// node receives exactly the ID sequential execution would assign.
	for a := 0; a < len(stmts); {
		b := a + 1
		for b < len(stmts) && stmts[b].Kind == stmts[a].Kind {
			b++
		}
		plan.Units = append(plan.Units, core.BatchPUL{
			PUL:        mergeRun(plan.PerStatement[a:b]),
			Statements: b - a,
			Sources:    stmts[a:b],
		})
		a = b
	}
	return plan, nil
}

// coveredBy reports whether id is one of the roots or inside one of the
// subtrees already scheduled for deletion.
func coveredBy(deleted []dewey.ID, id dewey.ID) bool {
	for _, d := range deleted {
		if d.Equal(id) || d.IsAncestorOf(id) {
			return true
		}
	}
	return false
}

// simpleNamePath reports whether every step of p is a predicate-free name
// test, returning the step names.
func simpleNamePath(p xpath.Path) ([]string, bool) {
	names := make([]string, 0, len(p.Steps))
	for _, s := range p.Steps {
		if s.Kind != xpath.TestName || len(s.Preds) > 0 {
			return nil, false
		}
		if s.Axis != xpath.Child && s.Axis != xpath.Descendant {
			// Sibling axes select by position among siblings, which the
			// batched label-path translation cannot express.
			return nil, false
		}
		names = append(names, s.Name)
	}
	return names, true
}

// collectLabels records every element label in t's subtree.
func collectLabels(t *xmltree.Node, into map[string]bool) {
	xmltree.Walk(t, func(n *xmltree.Node) bool {
		if n.Kind == xmltree.Element {
			into[n.Label] = true
		}
		return true
	})
}

// mergeRun combines one run of consecutive same-kind per-statement PULs
// into a single PUL. Insertions concatenate in statement order (update
// applies pending inserts in order, reproducing sequential ID assignment);
// deletions merge with the same normalization ComputePUL applies — sorted
// by ID, targets nested under a kept target dropped.
func mergeRun(puls []*update.PUL) *update.PUL {
	merged := &update.PUL{Kind: puls[0].Kind}
	switch merged.Kind {
	case update.Insert:
		for _, p := range puls {
			merged.Inserts = append(merged.Inserts, p.Inserts...)
		}
	case update.Delete:
		for _, p := range puls {
			merged.Deletes = append(merged.Deletes, p.Deletes...)
		}
		sort.Slice(merged.Deletes, func(i, j int) bool {
			return merged.Deletes[i].ID.Compare(merged.Deletes[j].ID) < 0
		})
		kept := merged.Deletes[:0]
		for _, n := range merged.Deletes {
			if k := len(kept); k > 0 && (kept[k-1].ID.Equal(n.ID) || kept[k-1].ID.IsAncestorOf(n.ID)) {
				continue
			}
			kept = append(kept, n)
		}
		merged.Deletes = kept
	}
	return merged
}
