package pulopt

import (
	"strings"
	"testing"

	"xivm/internal/core"
	"xivm/internal/pattern"
	"xivm/internal/update"
	"xivm/internal/xmltree"
)

// fig17Doc approximates the paper's Figure 17 document.
const fig17Doc = `<a>
 <c><b><d><b/></d><d><b/></d><d><b/><e/></d></b></c>
 <f><c><b/></c></f>
 <c><b/></c>
</a>`

func mustDoc(t *testing.T, s string) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func forest(t *testing.T, s string) []*xmltree.Node {
	t.Helper()
	f, err := xmltree.ParseForest(s)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// pathNode resolves an XPath-ish label chain (first match) for tests.
func pathNode(t *testing.T, d *xmltree.Document, labels ...string) *xmltree.Node {
	t.Helper()
	n := d.Root
	for _, l := range labels {
		var next *xmltree.Node
		for _, c := range n.Children {
			if c.Label == l {
				next = c
				break
			}
		}
		if next == nil {
			t.Fatalf("no %v under %v", l, n.Label)
		}
		n = next
	}
	return n
}

// TestReduceExample51 reproduces Example 5.1: six operations reduce to
// {del(d1.b1), del(d2), ins↘(d3, [b, d[b]])}.
func TestReduceExample51(t *testing.T) {
	d := mustDoc(t, fig17Doc)
	b1 := pathNode(t, d, "c", "b")
	ds := b1.ElementChildren() // d1, d2, d3
	if len(ds) != 3 {
		t.Fatalf("expected 3 d children, got %d", len(ds))
	}
	d1b := ds[0].ElementChildren()[0]
	d2b := ds[1].ElementChildren()[0]

	ops := Seq{
		{Kind: InsLast, Target: d1b.ID, Forest: forest(t, `<b><d/></b>`)},   // op1
		{Kind: Del, Target: d1b.ID},                                         // op2
		{Kind: InsLast, Target: d2b.ID, Forest: forest(t, `<b/>`)},          // op3
		{Kind: Del, Target: ds[1].ID},                                       // op4
		{Kind: InsLast, Target: ds[2].ID, Forest: forest(t, `<b/>`)},        // op5
		{Kind: InsLast, Target: ds[2].ID, Forest: forest(t, `<d><b/></d>`)}, // op6
	}
	got := Reduce(ops)
	if len(got) != 3 {
		t.Fatalf("reduced to %d ops: %v", len(got), got)
	}
	if got[0].Kind != Del || !got[0].Target.Equal(d1b.ID) {
		t.Fatalf("op0 = %v", got[0])
	}
	if got[1].Kind != Del || !got[1].Target.Equal(ds[1].ID) {
		t.Fatalf("op1 = %v", got[1])
	}
	if got[2].Kind != InsLast || len(got[2].Forest) != 2 {
		t.Fatalf("op2 = %v", got[2])
	}
}

func TestReduceIdempotentAndOrderPreserving(t *testing.T) {
	d := mustDoc(t, fig17Doc)
	c := pathNode(t, d, "c")
	f := pathNode(t, d, "f")
	ops := Seq{
		{Kind: InsLast, Target: c.ID, Forest: forest(t, `<x/>`)},
		{Kind: InsLast, Target: f.ID, Forest: forest(t, `<y/>`)},
		{Kind: InsLast, Target: c.ID, Forest: forest(t, `<z/>`)},
	}
	got := Reduce(ops)
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	if !got[0].Target.Equal(c.ID) || len(got[0].Forest) != 2 {
		t.Fatalf("merge failed: %v", got[0])
	}
	again := Reduce(got)
	if len(again) != len(got) {
		t.Fatal("Reduce not idempotent")
	}
}

func TestReduceO3KillsDescendantOps(t *testing.T) {
	d := mustDoc(t, fig17Doc)
	b1 := pathNode(t, d, "c", "b")
	d3 := b1.ElementChildren()[2]
	ops := Seq{
		{Kind: InsLast, Target: d3.ID, Forest: forest(t, `<b/>`)},
		{Kind: Del, Target: d3.ElementChildren()[0].ID}, // deleting a CHILD must not kill the insert on d3
		{Kind: Del, Target: b1.ID},                      // ancestor delete kills both earlier ops
	}
	got := Reduce(ops)
	if len(got) != 1 || got[0].Kind != Del || !got[0].Target.Equal(b1.ID) {
		t.Fatalf("got %v", got)
	}
}

// TestIntegrateConflictsExample52 reproduces Example 5.2: every pair
// conflicts (IO, LO, NLO).
func TestIntegrateConflictsExample52(t *testing.T) {
	d := mustDoc(t, fig17Doc)
	b1 := pathNode(t, d, "c", "b")
	ds := b1.ElementChildren()
	d1, d2, d3 := ds[0], ds[1], ds[2]
	d3b := d3.ElementChildren()[0]

	pul1 := Seq{
		{Kind: InsLast, Target: d1.ID, Forest: forest(t, `<d><b/></d>`)},
		{Kind: Del, Target: d2.ID},
		{Kind: Del, Target: d3.ID},
	}
	pul2 := Seq{
		{Kind: InsLast, Target: d1.ID, Forest: forest(t, `<b/>`)},
		{Kind: InsLast, Target: d2.ID, Forest: forest(t, `<b/>`)},
		{Kind: InsLast, Target: d3b.ID, Forest: forest(t, `<b/>`)},
	}
	merged, conflicts := Integrate(pul1, pul2)
	if len(merged) != 6 {
		t.Fatalf("merged %d", len(merged))
	}
	rules := map[string]int{}
	for _, c := range conflicts {
		rules[c.Rule]++
	}
	if rules["IO"] != 1 || rules["LO"] != 1 || rules["NLO"] != 1 {
		t.Fatalf("conflicts = %v", conflicts)
	}
}

// TestAggregateExample53 reproduces Example 5.3: A1, A2 (as merged
// insertions) and D6 all fire.
func TestAggregateExample53(t *testing.T) {
	d := mustDoc(t, fig17Doc)
	b1 := pathNode(t, d, "c", "b")
	ds := b1.ElementChildren()
	d1b := ds[0].ElementChildren()[0]
	d3 := ds[2]

	pul1 := Seq{
		{Kind: InsLast, Target: d1b.ID, Forest: forest(t, `<c><b/></c>`)},
		{Kind: InsLast, Target: ds[1].ID, Forest: forest(t, `<b/>`)},
		{Kind: InsLast, Target: d3.ID, Forest: forest(t, `<d><b/></d>`)},
	}
	// op32 targets the b inside the d tree inserted by op31: its ID is a
	// child of d3 labeled d then b.
	insideID := d3.ID.Child("d", nil).Child("b", nil)
	pul2 := Seq{
		{Kind: InsLast, Target: d1b.ID, Forest: forest(t, `<b/>`)},
		{Kind: InsLast, Target: ds[1].ID, Forest: forest(t, `<d><b/></d>`)},
		{Kind: InsLast, Target: insideID, Forest: forest(t, `<b/>`)},
	}
	got := Aggregate(pul1, pul2)
	if len(got) != 3 {
		t.Fatalf("aggregated to %d ops: %v", len(got), got)
	}
	if len(got[0].Forest) != 2 { // A1: c-tree + b
		t.Fatalf("op0 %v", got[0])
	}
	if len(got[1].Forest) != 2 { // A2: b + d-tree
		t.Fatalf("op1 %v", got[1])
	}
	// D6: op32 was applied inside the d3 insertion's parameter tree — the b
	// inside the inserted d gained a b child (ins↘ appends children to its
	// target), and op32 left the second PUL.
	dTree := got[2].Forest[0]
	if dTree.Label != "d" || dTree.Content() != "<d><b><b/></b></d>" {
		t.Fatalf("D6 splice failed: %s", dTree.Content())
	}
}

// TestReducedSequenceEquivalence: applying the reduced sequence yields the
// same document and views as the original sequence.
func TestReducedSequenceEquivalence(t *testing.T) {
	build := func() (*core.Engine, *core.ManagedView) {
		d := mustDoc(t, fig17Doc)
		e := core.NewEngine(d, core.Options{})
		mv, err := e.AddView("v", pattern.MustParse(`//b{ID}//d{ID}//b{ID}`))
		if err != nil {
			t.Fatal(err)
		}
		return e, mv
	}

	mkOps := func(e *core.Engine) Seq {
		d := e.Doc
		b1 := pathNode(t, d, "c", "b")
		ds := b1.ElementChildren()
		d1b := ds[0].ElementChildren()[0]
		d2b := ds[1].ElementChildren()[0]
		return Seq{
			{Kind: InsLast, Target: d1b.ID, Forest: forest(t, `<b><d/></b>`)},
			{Kind: Del, Target: d1b.ID},
			{Kind: InsLast, Target: d2b.ID, Forest: forest(t, `<b/>`)},
			{Kind: Del, Target: ds[1].ID},
			{Kind: InsLast, Target: ds[2].ID, Forest: forest(t, `<b/>`)},
			{Kind: InsLast, Target: ds[2].ID, Forest: forest(t, `<d><b/></d>`)},
		}
	}

	e1, v1 := build()
	if _, err := Apply(e1, mkOps(e1)); err != nil {
		t.Fatal(err)
	}
	e2, v2 := build()
	if _, err := Apply(e2, Reduce(mkOps(e2))); err != nil {
		t.Fatal(err)
	}
	if e1.Doc.String() != e2.Doc.String() {
		t.Fatalf("documents differ:\n%s\nvs\n%s", e1.Doc, e2.Doc)
	}
	r1, r2 := v1.View.Rows(), v2.View.Rows()
	if len(r1) != len(r2) {
		t.Fatalf("views differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i].Key() != r2[i].Key() || r1[i].Count != r2[i].Count {
			t.Fatalf("row %d differs", i)
		}
	}
	if !e1.CheckView(v1) || !e2.CheckView(v2) {
		t.Fatal("views diverged from recomputation")
	}
}

// TestFromStatements expands statement-level updates to elementary ops.
func TestFromStatements(t *testing.T) {
	d := mustDoc(t, fig17Doc)
	e := core.NewEngine(d, core.Options{})
	stmts := []*update.Statement{
		update.MustParse(`for $x in //c insert <q/>`),
		update.MustParse(`delete //e`),
	}
	ops, err := FromStatements(e, stmts)
	if err != nil {
		t.Fatal(err)
	}
	var ins, del int
	for _, op := range ops {
		if op.Kind == InsLast {
			ins++
		} else {
			del++
		}
	}
	if ins != 3 || del != 1 {
		t.Fatalf("ins=%d del=%d ops=%v", ins, del, ops)
	}
	if !strings.Contains(ops[0].String(), "ins↘") {
		t.Fatalf("String: %s", ops[0])
	}
}
