package pulopt

import (
	"context"
	"errors"
	"testing"

	"xivm/internal/core"
	"xivm/internal/pattern"
	"xivm/internal/update"
	"xivm/internal/xmltree"
)

func planEngine(t *testing.T, src string) *core.Engine {
	t.Helper()
	d, err := xmltree.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	return core.NewEngine(d, core.Options{})
}

func stmts(t *testing.T, srcs ...string) []*update.Statement {
	t.Helper()
	out := make([]*update.Statement, len(srcs))
	for i, s := range srcs {
		st, err := update.Parse(s)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		out[i] = st
	}
	return out
}

// TestPlanBatchEquivalence: a clean batch applied through ApplyBatchCtx
// produces the same document and the same final version as sequential
// statement application.
func TestPlanBatchEquivalence(t *testing.T) {
	const doc = `<r><a><k/></a><b/><c><d/></c></r>`
	batch := []string{
		`insert <x><y/></x> into /r/a`,
		`insert <z/> into /r/b`,
		`delete /r/c/d`,
		`insert <w/> into /r/c`,
	}

	e1 := planEngine(t, doc)
	if _, err := e1.AddView("v", pattern.MustParse(`//a{ID}//y{ID}`)); err != nil {
		t.Fatal(err)
	}
	for _, st := range stmts(t, batch...) {
		if _, err := e1.ApplyStatement(st); err != nil {
			t.Fatal(err)
		}
	}

	e2 := planEngine(t, doc)
	v2, err := e2.AddView("v", pattern.MustParse(`//a{ID}//y{ID}`))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanBatch(e2, stmts(t, batch...))
	if err != nil {
		t.Fatalf("PlanBatch: %v", err)
	}
	// ins,ins | del | ins → three same-kind runs.
	if len(plan.Units) != 3 {
		t.Fatalf("units = %d, want 3 (%+v)", len(plan.Units), plan.Units)
	}
	if plan.Units[0].Statements != 2 || plan.Units[1].Statements != 1 || plan.Units[2].Statements != 1 {
		t.Fatalf("unit statement counts: %+v", plan.Units)
	}
	rep, applied, err := e2.ApplyBatchCtx(context.Background(), plan.Units)
	if err != nil {
		t.Fatal(err)
	}
	if applied != len(batch) {
		t.Fatalf("applied %d statements, want %d", applied, len(batch))
	}
	if rep.Targets == 0 {
		t.Fatal("merged report lost target counts")
	}
	if e1.Doc.String() != e2.Doc.String() {
		t.Fatalf("documents differ\nsequential: %s\nbatched:    %s", e1.Doc, e2.Doc)
	}
	if e1.Version() != e2.Version() {
		t.Fatalf("versions differ: sequential %d, batched %d", e1.Version(), e2.Version())
	}
	if !e2.CheckView(v2) {
		t.Fatal("batched view inconsistent with recomputation")
	}
}

// TestPlanBatchGates exercises every planner rejection, checking both the
// sentinel and the reason.
func TestPlanBatchGates(t *testing.T) {
	const doc = `<r><a><k/></a><b/><x/></r>`
	cases := []struct {
		name   string
		batch  []string
		reason string
	}{
		{"replace", []string{
			`insert <y/> into /r/a`,
			`replace /r/b with <b2/>`,
		}, "replace"},
		{"copyof beyond first", []string{
			`insert <y/> into /r/a`,
			`insert /r/a into /r/b`,
		}, "copyof"},
		{"predicate path", []string{
			`insert <y/> into /r/a`,
			`delete /r/a[k]`,
		}, "path"},
		{"wildcard path", []string{
			`insert <y/> into /r/a`,
			`delete /r/*`,
		}, "path"},
		{"label overlap", []string{
			`insert <x/> into /r/a`,
			`delete //x`,
		}, "label-overlap"},
		{"insert into deleted (LO)", []string{
			`delete /r/b`,
			`insert <y/> into /r/b`,
		}, "conflict"},
		{"insert under deleted (NLO)", []string{
			`delete /r/a`,
			`insert <y/> into /r/a/k`,
		}, "conflict"},
		{"same-target inserts (IO)", []string{
			`insert <y/> into /r/b`,
			`insert <z/> into /r/b`,
		}, "conflict"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := planEngine(t, doc)
			_, err := PlanBatch(e, stmts(t, tc.batch...))
			if !errors.Is(err, ErrNotBatchable) {
				t.Fatalf("err = %v, want ErrNotBatchable", err)
			}
			var nb *NotBatchableError
			if !errors.As(err, &nb) || nb.Reason != tc.reason {
				t.Fatalf("reason = %v, want %s", err, tc.reason)
			}
		})
	}
}

// TestPlanBatchDropsCoveredDeletes: a delete whose target an earlier
// statement's deletion already covers is dropped — sequential execution
// would no longer see the node — and the run still accounts for both
// statements.
func TestPlanBatchDropsCoveredDeletes(t *testing.T) {
	e := planEngine(t, `<r><a><k/></a><b/></r>`)
	plan, err := PlanBatch(e, stmts(t,
		`delete /r/a`,
		`delete /r/a/k`,
	))
	if err != nil {
		t.Fatalf("PlanBatch: %v", err)
	}
	if len(plan.Units) != 1 || plan.Units[0].Statements != 2 {
		t.Fatalf("units = %+v", plan.Units)
	}
	if got := len(plan.Units[0].PUL.Deletes); got != 1 {
		t.Fatalf("combined delete targets = %d, want 1 (covered delete kept)", got)
	}

	// Sequential equivalence including the version count. The plan's PULs
	// reference e's own nodes, so it applies to the engine it was planned
	// against.
	if _, applied, err := e.ApplyBatchCtx(context.Background(), plan.Units); err != nil || applied != 2 {
		t.Fatalf("batch apply: applied=%d err=%v", applied, err)
	}
	if e.Version() != 2 {
		t.Fatalf("version = %d, want 2", e.Version())
	}
	if got := e.Doc.String(); got != `<r><b/></r>` {
		t.Fatalf("doc = %s", got)
	}
}
