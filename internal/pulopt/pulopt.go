// Package pulopt re-implements, for the two update operations the paper
// retains (ins↘ — insert a forest after the last child — and del), the
// pending-update-list optimization rules of Cavalieri, Guerrini and Mesiti
// (EDBT 2011) that Section 5 interleaves with view maintenance: the
// reduction rules O1, O3 and I5, the conflict rules IO, LO and NLO for
// parallel integration, and the aggregation rules A1, A2 and D6 for
// sequential composition. Operations reference nodes by their Compact
// Dynamic Dewey IDs, exactly as the paper's framework encodes PULs.
package pulopt

import (
	"fmt"
	"strings"

	"xivm/internal/dewey"
	"xivm/internal/obs"
	"xivm/internal/xmltree"
)

// Per-rule firing counters (nil *obs.Counter fields are no-op sinks). The
// optimizer rules are pure functions shared by every engine in the
// process, so the counters live at package level; SetMetrics must be
// called before concurrent use (typically once at startup).
var rules struct {
	o1, o3, i5  *obs.Counter // reduction
	io, lo, nlo *obs.Counter // parallel-integration conflicts
	a1a2, d6    *obs.Counter // sequential aggregation
}

// SetMetrics wires the per-rule firing counters (pulopt.rule.O1 … D6)
// into a registry.
func SetMetrics(m *obs.Metrics) {
	rules.o1 = m.Counter("pulopt.rule.O1")
	rules.o3 = m.Counter("pulopt.rule.O3")
	rules.i5 = m.Counter("pulopt.rule.I5")
	rules.io = m.Counter("pulopt.rule.IO")
	rules.lo = m.Counter("pulopt.rule.LO")
	rules.nlo = m.Counter("pulopt.rule.NLO")
	rules.a1a2 = m.Counter("pulopt.rule.A1A2")
	rules.d6 = m.Counter("pulopt.rule.D6")
}

func init() { SetMetrics(obs.Default()) }

// OpKind distinguishes the two supported elementary operations.
type OpKind uint8

const (
	// InsLast is ins↘(v, P): insert forest P after the last child of v.
	InsLast OpKind = iota
	// Del is del(v): delete node v (and its subtree).
	Del
)

func (k OpKind) String() string {
	if k == Del {
		return "del"
	}
	return "ins↘"
}

// Op is one elementary update operation of a PUL.
type Op struct {
	Kind   OpKind
	Target dewey.ID
	Forest []*xmltree.Node // InsLast only
}

// String renders the operation in the paper's notation.
func (o Op) String() string {
	if o.Kind == Del {
		return fmt.Sprintf("del(%v)", o.Target)
	}
	var b strings.Builder
	for _, t := range o.Forest {
		b.WriteString(t.Content())
	}
	return fmt.Sprintf("ins↘(%v, %s)", o.Target, b.String())
}

// Seq is an ordered sequence of elementary operations (a PUL).
type Seq []Op

// Reduce applies the reduction rules (stage ∇1) until fixpoint:
//
//	O1: op(n,·) followed by del(n)            → keep only the deletion.
//	O3: op(n,·) followed by del(n′), n′ ≺≺ n  → keep only the deletion.
//	I5: ins↘(n,L1) … ins↘(n,L2)               → ins↘(n,[L1,L2]).
//
// Relative order of surviving operations is preserved; merged insertions
// stay at the position of the first insertion on the node.
func Reduce(ops Seq) Seq {
	// O1/O3: an operation dies if a LATER deletion targets the same node
	// (O1) or an ancestor of it (O3). A later deletion of a descendant does
	// not remove an earlier insertion.
	alive := make([]bool, len(ops))
	for i := range alive {
		alive[i] = true
	}
	for i, op := range ops {
		for j := i + 1; j < len(ops); j++ {
			later := ops[j]
			if later.Kind != Del {
				continue
			}
			if later.Target.Equal(op.Target) {
				rules.o1.Inc()
				alive[i] = false
				break
			}
			if later.Target.IsAncestorOf(op.Target) {
				rules.o3.Inc()
				alive[i] = false
				break
			}
		}
	}
	// I5: merge insertions on the same target into the earliest surviving
	// insertion they can safely commute back to. Merging ins↘(n,L2) into an
	// earlier ins↘(n,L1) moves L2's effect before every operation between the
	// two, so the merge is only taken when all of those intervening survivors
	// commute with an insertion on n (they touch neither n nor its subtree).
	// When an intervening operation blocks the merge, the later insertion
	// becomes the new merge anchor for n.
	firstIns := map[string]int{} // target key -> index in out
	var out Seq
	for i, op := range ops {
		if !alive[i] {
			continue
		}
		if op.Kind == InsLast {
			k := op.Target.Key()
			if at, ok := firstIns[k]; ok && commutesWithInsertAll(out[at+1:], op.Target) {
				rules.i5.Inc()
				merged := out[at]
				merged.Forest = append(append([]*xmltree.Node{}, merged.Forest...), op.Forest...)
				out[at] = merged
				continue
			}
			firstIns[k] = len(out)
		}
		out = append(out, op)
	}
	return out
}

// commutesWithInsert reports whether operation a can be reordered past an
// insertion on node n without changing the final document. An operation on
// n itself or inside n's subtree can change which node is n's last child —
// or resolve a node the insertion creates — so the insertion's effect
// depends on their relative order; a deletion of an ancestor of n removes n
// itself, turning a later insertion on n into a no-op. Operations elsewhere
// (including insertions into ancestors of n, which append children beside
// n, never inside it) are independent of the insertion.
func commutesWithInsert(a Op, n dewey.ID) bool {
	if a.Target.Equal(n) || n.IsAncestorOf(a.Target) {
		return false
	}
	return a.Kind != Del || !a.Target.IsAncestorOf(n)
}

func commutesWithInsertAll(ops Seq, n dewey.ID) bool {
	for _, a := range ops {
		if !commutesWithInsert(a, n) {
			return false
		}
	}
	return true
}

// Conflict reports one rule violation found while integrating two PULs to
// be executed in parallel.
type Conflict struct {
	Rule string // "IO", "LO" or "NLO"
	A, B Op
}

func (c Conflict) String() string {
	return fmt.Sprintf("%s: %v / %v", c.Rule, c.A, c.B)
}

// Integrate merges two PULs intended to run in parallel, reporting the
// conflicts identified by the rules:
//
//	IO:  two ins↘ on the same target — result depends on execution order.
//	LO:  del in one PUL and ins↘ on the same target in the other — the
//	     deletion is locally overridden.
//	NLO: del whose target is an ancestor of the other PUL's ins↘ target —
//	     non-local override.
//
// The merged sequence (∆1 then ∆2) is returned regardless; callers decide,
// per their conflict-resolution policy, whether to proceed.
func Integrate(d1, d2 Seq) (Seq, []Conflict) {
	var conflicts []Conflict
	for _, a := range d1 {
		for _, b := range d2 {
			switch {
			case a.Kind == InsLast && b.Kind == InsLast && a.Target.Equal(b.Target):
				rules.io.Inc()
				conflicts = append(conflicts, Conflict{Rule: "IO", A: a, B: b})
			case a.Kind == Del && b.Kind == InsLast && a.Target.Equal(b.Target):
				rules.lo.Inc()
				conflicts = append(conflicts, Conflict{Rule: "LO", A: a, B: b})
			case a.Kind == InsLast && b.Kind == Del && b.Target.Equal(a.Target):
				rules.lo.Inc()
				conflicts = append(conflicts, Conflict{Rule: "LO", A: b, B: a})
			case a.Kind == Del && b.Kind == InsLast && a.Target.IsAncestorOf(b.Target):
				rules.nlo.Inc()
				conflicts = append(conflicts, Conflict{Rule: "NLO", A: a, B: b})
			case a.Kind == InsLast && b.Kind == Del && b.Target.IsAncestorOf(a.Target):
				rules.nlo.Inc()
				conflicts = append(conflicts, Conflict{Rule: "NLO", A: b, B: a})
			}
		}
	}
	merged := append(append(Seq{}, d1...), d2...)
	return merged, conflicts
}

// Aggregate composes two PULs to be executed sequentially (∆1 on the
// original document, ∆2 on the result), applying:
//
//	A1/A2: insertions on the same node are combined into one operation.
//	D6:    a ∆2 operation whose target lies inside a tree inserted by a ∆1
//	       operation is applied directly to that parameter tree and removed
//	       from ∆2.
//
// D6 resolves the ∆2 target inside the inserted forest by its label path
// below the insertion point (position among equal-labeled siblings follows
// ordinal rank), a faithful approximation of the original ID-based
// addressing.
// Both merges relocate the ∆2 operation before everything that would
// otherwise run between the merge point and the end of the combined
// sequence, so they are only taken when every one of those intervening
// operations commutes with an insertion on the ∆2 target; otherwise the
// operation stays in place and the sequences simply concatenate.
func Aggregate(d1, d2 Seq) Seq {
	out := append(Seq{}, d1...)
	var rest Seq
	for _, op2 := range d2 {
		if op2.Kind == InsLast {
			// A1/A2: same-target insertions merge.
			mergedIn := false
			for i, op1 := range out {
				if op1.Kind == InsLast && op1.Target.Equal(op2.Target) {
					if !commutesWithInsertAll(out[i+1:], op2.Target) || !commutesWithInsertAll(rest, op2.Target) {
						break
					}
					rules.a1a2.Inc()
					op1.Forest = append(append([]*xmltree.Node{}, op1.Forest...), op2.Forest...)
					out[i] = op1
					mergedIn = true
					break
				}
			}
			if mergedIn {
				continue
			}
			// D6: target inside a tree inserted by ∆1.
			if spliced := spliceIntoInserted(out, rest, op2); spliced {
				rules.d6.Inc()
				continue
			}
		}
		rest = append(rest, op2)
	}
	return append(out, rest...)
}

// spliceIntoInserted finds a ∆1 insertion whose target is a proper ancestor
// of op2's target, resolves the residual label path inside its forest, and
// appends op2's forest there. The splice is only taken when every operation
// that would otherwise run between the host insertion and op2 (the rest of
// d1 plus the already-deferred tail) commutes with an insertion on op2's
// target. The host forest is copy-on-write: the caller's original trees are
// never mutated — the op is rewritten to point at a spliced clone. It
// reports whether the splice happened.
func spliceIntoInserted(d1, tail Seq, op2 Op) bool {
	for i, op1 := range d1 {
		if op1.Kind != InsLast || !op1.Target.IsAncestorOf(op2.Target) {
			continue
		}
		// Only a SYMBOLIC residual path — steps carrying no ordinal, the
		// paper's addressing for nodes the ∆1 parameter tree has not yet
		// materialized — can denote a node inside the inserted forest. Steps
		// with concrete ordinals identify nodes of the stored document (a
		// pre-existing descendant of the insertion point); those operations
		// must stay in place and resolve against the store after ∆1 runs.
		if !symbolicBelow(op1.Target, op2.Target) {
			continue
		}
		if !commutesWithInsertAll(d1[i+1:], op2.Target) || !commutesWithInsertAll(tail, op2.Target) {
			return false
		}
		rel := relativeLabels(op1.Target, op2.Target)
		if resolveInForest(op1.Forest, rel) == nil {
			continue
		}
		forest := make([]*xmltree.Node, len(op1.Forest))
		for j, t := range op1.Forest {
			forest[j] = t.Clone()
		}
		node := resolveInForest(forest, rel)
		for _, t := range op2.Forest {
			cp := t.Clone()
			cp.Parent = node
			node.Children = append(node.Children, cp)
		}
		op1.Forest = forest
		d1[i] = op1
		return true
	}
	return false
}

// symbolicBelow reports whether every step of desc below anc carries no
// ordinal — i.e. desc addresses a node by label path only, which can only
// be satisfied inside a not-yet-materialized parameter tree.
func symbolicBelow(anc, desc dewey.ID) bool {
	for lvl := anc.Level(); lvl < desc.Level(); lvl++ {
		if len(desc.Step(lvl).Ord) != 0 {
			return false
		}
	}
	return true
}

func relativeLabels(anc, desc dewey.ID) []string {
	labels := desc.LabelPath()
	return labels[anc.Level():]
}

// resolveInForest walks the label path into the forest: at each level the
// first tree/child carrying the label is taken.
func resolveInForest(forest []*xmltree.Node, labels []string) *xmltree.Node {
	if len(labels) == 0 {
		return nil
	}
	for _, t := range forest {
		if t.Label != labels[0] {
			continue
		}
		node := t
		ok := true
		for _, l := range labels[1:] {
			var next *xmltree.Node
			for _, c := range node.Children {
				if c.Label == l {
					next = c
					break
				}
			}
			if next == nil {
				ok = false
				break
			}
			node = next
		}
		if ok {
			return node
		}
	}
	return nil
}
