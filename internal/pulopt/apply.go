package pulopt

import (
	"time"

	"xivm/internal/core"
	"xivm/internal/update"
)

// FromPUL converts a statement-level pending update list into the
// elementary operation sequence the optimization rules work on (the CP step
// of Figure 13).
func FromPUL(pul *update.PUL) Seq {
	var ops Seq
	switch pul.Kind {
	case update.Insert:
		for _, pi := range pul.Inserts {
			ops = append(ops, Op{Kind: InsLast, Target: pi.Target.ID, Forest: pi.Trees})
		}
	case update.Delete:
		for _, n := range pul.Deletes {
			ops = append(ops, Op{Kind: Del, Target: n.ID})
		}
	}
	return ops
}

// FromStatements expands a sequence of statement-level updates against the
// engine's CURRENT document into one elementary operation sequence. Note
// that, as in the paper's framework, all target paths are resolved against
// the original document before any operation runs.
func FromStatements(e *core.Engine, stmts []*update.Statement) (Seq, error) {
	var ops Seq
	for _, st := range stmts {
		pul, err := update.ComputePUL(e.Doc, st)
		if err != nil {
			return nil, err
		}
		ops = append(ops, FromPUL(pul)...)
	}
	return ops, nil
}

// Apply runs an elementary operation sequence through the engine, one
// node-level PUL per operation, maintaining all views. An operation whose
// target no longer exists (removed by an earlier deletion in the same
// sequence — exactly what the reduction rules eliminate up front) is still
// processed as an empty PUL: the engine pays the per-operation propagation
// overhead of discovering there is nothing to do, as a store receiving the
// unreduced sequence would. It returns the total propagation time.
func Apply(e *core.Engine, ops Seq) (time.Duration, error) {
	start := time.Now()
	for _, op := range ops {
		pul := &update.PUL{}
		n := e.Doc.NodeByID(op.Target)
		switch op.Kind {
		case InsLast:
			pul.Kind = update.Insert
			if n != nil {
				pul.Inserts = []update.PendingInsert{{Target: n, Trees: op.Forest}}
			}
		case Del:
			pul.Kind = update.Delete
			if n != nil {
				pul.Deletes = append(pul.Deletes, n)
			}
		}
		if _, err := e.ApplyPUL(pul); err != nil {
			return time.Since(start), err
		}
	}
	return time.Since(start), nil
}
