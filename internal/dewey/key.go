package dewey

import "math/bits"

// This file implements the cached, order-preserving binary key carried by
// every ID. The key is computed once at construction (NewRoot/Child/Decode)
// and makes the engine's hottest ID operations single string ops:
//
//	bytes order        Compare(a,b) == strings.Compare(a.key, b.key)
//	identity           Equal(a,b)   == (a.key == b.key)
//	ancestorship       IsAncestorOf(a,b) == a.key is a proper prefix of b.key
//	map keys           Key() returns the cached string, zero allocation
//
// Layout: the key is the concatenation of one FRAME per step. A frame is
//
//	component*  ordEnd  escaped-label  0x00 frameEnd
//
// where each ordinal component is encoded as a lead byte 0x01+n followed by
// the n big-endian bytes of its value with leading zeros stripped (n is
// minimal, so the encoding is canonical and lead bytes order first by byte
// length, then bytes order by magnitude); ordEnd is a single 0x00 byte; and
// the label has every 0x00 byte escaped as 0x00 0xFF before the 0x00 0x01
// terminator.
//
// Why this is order-isomorphic to ID.Compare:
//
//   - Components: shorter-big-endian means smaller value, so the 0x01+n lead
//     byte decides first; equal leads fall through to the big-endian bytes.
//   - Ordinal prefixes: a strict prefix ordinal emits ordEnd (0x00) where its
//     extension emits a component lead byte (>= 0x01), so prefixes sort
//     first — exactly Ord.Compare's missing-components-are-minus-infinity.
//   - Labels: the 0x00 0x01 terminator sorts before both escaped zeros
//     (0x00 0xFF) and every plain label byte, so prefix labels sort first
//     and everything else compares bytewise, matching strings.Compare.
//   - Steps: an ID whose steps are a strict prefix of another's produces a
//     strict key prefix, which bytes-compares first — ancestors precede
//     descendants in document order.
//
// Why prefix-check equals ancestorship: frames are self-delimiting, so a
// deterministic left-to-right parse of any valid key recovers its steps.
// If a.key is a prefix of b.key, parsing b.key consumes exactly a's frames
// first, hence a's steps are a step-prefix of b's. Because no valid frame
// byte sequence can resume mid-frame, prefixes always align on frame
// boundaries. The same determinism makes the whole encoding injective.
const (
	ordEnd      = 0x00 // terminates a step's ordinal vector
	labelEscLit = 0xFF // 0x00 0xFF inside a label encodes a literal 0x00
	frameEnd    = 0x01 // 0x00 0x01 terminates a step's label (and frame)
)

// appendComponent appends the order-preserving encoding of one ordinal
// component: lead byte 0x01+n, then the n big-endian significant bytes.
func appendComponent(dst []byte, v uint64) []byte {
	n := (bits.Len64(v) + 7) / 8
	dst = append(dst, byte(0x01+n))
	for i := n - 1; i >= 0; i-- {
		dst = append(dst, byte(v>>(8*uint(i))))
	}
	return dst
}

// appendFrame appends one step's frame.
func appendFrame(dst []byte, label string, ord Ord) []byte {
	for _, c := range ord {
		dst = appendComponent(dst, c)
	}
	dst = append(dst, ordEnd)
	for i := 0; i < len(label); i++ {
		if b := label[i]; b == 0x00 {
			dst = append(dst, 0x00, labelEscLit)
		} else {
			dst = append(dst, b)
		}
	}
	return append(dst, 0x00, frameEnd)
}

// frameCap upper-bounds the encoded size of one frame (components are at
// most lead+8 bytes; the +2 per label byte covers pathological 0x00s).
func frameCap(label string, ord Ord) int {
	return 9*len(ord) + 1 + 2*len(label) + 2
}

// newID builds an ID from steps, computing the cached key and the per-step
// frame-end offsets. It takes ownership of steps.
func newID(steps []Step) ID {
	if len(steps) == 0 {
		return ID{}
	}
	cap := 0
	for _, s := range steps {
		cap += frameCap(s.Label, s.Ord)
	}
	buf := make([]byte, 0, cap)
	for i := range steps {
		buf = appendFrame(buf, steps[i].Label, steps[i].Ord)
		steps[i].end = len(buf)
	}
	return ID{steps: steps, key: string(buf)}
}
