package dewey

// Cover is a set of subtree roots supporting "is this node inside any of
// the subtrees?" in O(depth) — the access path deletion propagation uses
// against the roots of a pending update list. Because a Dewey ID carries
// all its ancestors, membership reduces to hash probes on the ID's own
// prefixes; no document access and no scan over the roots.
type Cover struct {
	keys map[string]bool
}

// NewCover builds a cover from subtree roots (nesting is harmless).
func NewCover(roots []ID) *Cover {
	c := &Cover{keys: make(map[string]bool, len(roots))}
	for _, r := range roots {
		c.keys[r.Key()] = true
	}
	return c
}

// Len returns the number of distinct roots.
func (c *Cover) Len() int { return len(c.keys) }

// Contains reports whether id equals or descends from one of the roots.
func (c *Cover) Contains(id ID) bool {
	if len(c.keys) == 0 {
		return false
	}
	for lvl := id.Level(); lvl >= 1; lvl-- {
		if c.keys[id.KeyAt(lvl)] {
			return true
		}
	}
	return false
}

// ContainsStrict reports whether id strictly descends from one of the
// roots (id itself being a root does not count).
func (c *Cover) ContainsStrict(id ID) bool {
	if len(c.keys) == 0 {
		return false
	}
	for lvl := id.Level() - 1; lvl >= 1; lvl-- {
		if c.keys[id.KeyAt(lvl)] {
			return true
		}
	}
	return false
}
