package dewey_test

import (
	"fmt"

	"xivm/internal/dewey"
)

// ExampleBetween demonstrates the dynamic property: a fresh ordinal always
// fits between two existing siblings without relabeling either.
func ExampleBetween() {
	a := dewey.NewRoot("a")
	first := a.Child("b", dewey.OrdAt(0))
	second := a.Child("b", dewey.OrdAt(1))
	mid := a.Child("b", dewey.Between(dewey.OrdAt(0), dewey.OrdAt(1)))

	fmt.Println(first.Compare(mid), mid.Compare(second))
	fmt.Println(a.IsParentOf(mid), mid.HasAncestorLabeled("a"))
	// Output:
	// -1 -1
	// true true
}
