// Package dewey implements Compact Dynamic Dewey identifiers in the style of
// Xu et al. (SIGMOD 2009): structural node IDs that encode the full label
// path from the root, support parent/ancestor comparisons, never require
// relabeling existing nodes when the document is updated, and admit a
// compact binary encoding.
//
// An ID is a sequence of steps; each step carries the label of one ancestor
// (the last step carries the node's own label) and a dynamic ordinal that
// orders the node among its siblings. Ordinals are small integer vectors
// compared lexicographically, so a fresh ordinal can always be generated
// strictly between two existing ones without touching either — the property
// that makes the scheme dynamic.
package dewey

// Gap is the spacing between ordinals assigned to consecutive siblings when
// a subtree is first loaded. A large gap leaves room for many future
// insertions before ordinal vectors need to grow a second component.
const Gap = 1 << 20

// Ord is a dynamic sibling ordinal: a non-empty vector of components
// compared lexicographically, with a strict prefix ordering before any
// extension of it ([2] < [2,1]). The zero value (nil) is not a valid
// ordinal; use Between or OrdAt to create one.
type Ord []uint64

// OrdAt returns the ordinal for the i-th (0-based) sibling of a freshly
// loaded sequence: (i+1)*Gap as a single component.
func OrdAt(i int) Ord {
	return Ord{uint64(i+1) * Gap}
}

// Compare returns -1, 0, or +1 as o sorts before, equal to, or after p.
// Missing components compare as if they were -infinity, which makes a
// strict prefix sort before any of its extensions.
func (o Ord) Compare(p Ord) int {
	n := len(o)
	if len(p) < n {
		n = len(p)
	}
	for i := 0; i < n; i++ {
		switch {
		case o[i] < p[i]:
			return -1
		case o[i] > p[i]:
			return 1
		}
	}
	switch {
	case len(o) < len(p):
		return -1
	case len(o) > len(p):
		return 1
	}
	return 0
}

// Equal reports whether o and p are the same ordinal.
func (o Ord) Equal(p Ord) bool { return o.Compare(p) == 0 }

// Clone returns an independent copy of o.
func (o Ord) Clone() Ord {
	if o == nil {
		return nil
	}
	c := make(Ord, len(o))
	copy(c, o)
	return c
}

// comp returns the i-th component of o, padding with zeros past the end.
func (o Ord) comp(i int) uint64 {
	if i < len(o) {
		return o[i]
	}
	return 0
}

// Between returns a fresh ordinal strictly between a and b. A nil a means
// "before the first sibling"; a nil b means "after the last sibling"; both
// nil means "first child ever". Between panics if a and b are both non-nil
// and a does not sort strictly before b, since no ordinal can separate them.
//
// The result never requires relabeling a or b: it is constructed either as a
// midpoint in an existing gap or by extending a with one extra component.
func Between(a, b Ord) Ord {
	switch {
	case a == nil && b == nil:
		return Ord{Gap}
	case a == nil:
		return beforeFirst(b)
	case b == nil:
		return afterLast(a)
	}
	if a.Compare(b) >= 0 {
		panic("dewey: Between called with a >= b")
	}
	var out Ord
	for i := 0; ; i++ {
		av := a.comp(i)
		var bv uint64
		bounded := i < len(b)
		if bounded {
			bv = b[i]
		}
		if !bounded {
			// b exhausted: since a < b this cannot happen before a
			// diverges, but guard anyway by extending below a's tail.
			out = append(out, a[i:]...)
			return append(out, Gap)
		}
		if bv > av+1 {
			// Room for a midpoint at this component.
			return append(out, av+(bv-av)/2)
		}
		if bv == av+1 {
			// Adjacent: pin this component to av; the result is now
			// strictly below b, so only a constrains the tail.
			out = append(out, av)
			out = append(out, a[i+1:]...)
			return append(out, Gap)
		}
		// Components equal; keep walking.
		out = append(out, av)
	}
}

// beforeFirst returns an ordinal strictly below b.
func beforeFirst(b Ord) Ord {
	var out Ord
	for i := 0; i < len(b); i++ {
		if b[i] >= 2 {
			return append(out, b[i]/2)
		}
		if b[i] == 1 {
			return append(out, 0, Gap)
		}
		out = append(out, 0)
	}
	// b is all zeros — not producible by this package, but extend anyway.
	panic("dewey: cannot create ordinal before all-zero ordinal")
}

// afterLast returns an ordinal strictly above a.
func afterLast(a Ord) Ord {
	if a[0] <= ^uint64(0)-Gap {
		return Ord{a[0] + Gap}
	}
	out := a.Clone()
	return append(out, Gap)
}
