package dewey

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Dict maps labels to small integer codes so that encoded IDs stay compact.
// The zero value is ready to use. Dict is not safe for concurrent mutation.
type Dict struct {
	codes  map[string]uint64
	labels []string
}

// Code returns the code for label, assigning a fresh one if needed.
func (d *Dict) Code(label string) uint64 {
	if d.codes == nil {
		d.codes = make(map[string]uint64)
	}
	if c, ok := d.codes[label]; ok {
		return c
	}
	c := uint64(len(d.labels))
	d.codes[label] = c
	d.labels = append(d.labels, label)
	return c
}

// Label returns the label for a code.
func (d *Dict) Label(code uint64) (string, error) {
	if code >= uint64(len(d.labels)) {
		return "", fmt.Errorf("dewey: unknown label code %d", code)
	}
	return d.labels[code], nil
}

// Len returns the number of distinct labels registered.
func (d *Dict) Len() int { return len(d.labels) }

// Encode appends a compact binary encoding of id to dst and returns the
// extended slice. Labels are replaced by dictionary codes; ordinals use
// varint components.
func (id ID) Encode(d *Dict, dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(id.steps)))
	for _, s := range id.steps {
		dst = binary.AppendUvarint(dst, d.Code(s.Label))
		dst = binary.AppendUvarint(dst, uint64(len(s.Ord)))
		for _, c := range s.Ord {
			dst = binary.AppendUvarint(dst, c)
		}
	}
	return dst
}

// Decode parses an ID previously produced by Encode, returning the ID and
// the number of bytes consumed.
func Decode(d *Dict, src []byte) (ID, int, error) {
	pos := 0
	n, k := binary.Uvarint(src[pos:])
	if k <= 0 {
		return ID{}, 0, errors.New("dewey: truncated step count")
	}
	pos += k
	// Every step costs at least two bytes (label code + ordinal length), so
	// a count beyond half the remaining input cannot be satisfied. Checking
	// before the make keeps corrupt input from forcing a huge allocation.
	if n > uint64(len(src)-pos)/2 {
		return ID{}, 0, errors.New("dewey: implausible step count")
	}
	steps := make([]Step, 0, n)
	for i := uint64(0); i < n; i++ {
		code, k := binary.Uvarint(src[pos:])
		if k <= 0 {
			return ID{}, 0, errors.New("dewey: truncated label code")
		}
		pos += k
		label, err := d.Label(code)
		if err != nil {
			return ID{}, 0, err
		}
		m, k := binary.Uvarint(src[pos:])
		if k <= 0 {
			return ID{}, 0, errors.New("dewey: truncated ordinal length")
		}
		pos += k
		if m > uint64(len(src)-pos) {
			return ID{}, 0, errors.New("dewey: implausible ordinal length")
		}
		ord := make(Ord, 0, m)
		for j := uint64(0); j < m; j++ {
			c, k := binary.Uvarint(src[pos:])
			if k <= 0 {
				return ID{}, 0, errors.New("dewey: truncated ordinal component")
			}
			pos += k
			ord = append(ord, c)
		}
		steps = append(steps, Step{Label: label, Ord: ord})
	}
	return newID(steps), pos, nil
}
