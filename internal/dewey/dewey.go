package dewey

import (
	"strings"
)

// Step is one component of a structural ID: the label of an ancestor (or of
// the node itself, for the last step) and its dynamic ordinal among its
// siblings.
type Step struct {
	Label string
	Ord   Ord
}

// ID is a Compact Dynamic Dewey identifier: the sequence of steps from the
// document root down to the node. The zero value is the "null" ID, which
// identifies no node; it compares before every real ID.
type ID struct {
	steps []Step
}

// NewRoot returns the ID of a document root labeled label.
func NewRoot(label string) ID {
	return ID{steps: []Step{{Label: label, Ord: Ord{Gap}}}}
}

// Child returns the ID of a child of id with the given label and ordinal.
func (id ID) Child(label string, ord Ord) ID {
	steps := make([]Step, len(id.steps)+1)
	copy(steps, id.steps)
	steps[len(id.steps)] = Step{Label: label, Ord: ord}
	return ID{steps: steps}
}

// IsNull reports whether id is the zero (null) ID.
func (id ID) IsNull() bool { return len(id.steps) == 0 }

// Level returns the depth of the node: 1 for the root, 0 for the null ID.
func (id ID) Level() int { return len(id.steps) }

// Label returns the node's own label (the label of the last step), or ""
// for the null ID.
func (id ID) Label() string {
	if id.IsNull() {
		return ""
	}
	return id.steps[len(id.steps)-1].Label
}

// Step returns the i-th step (0-based from the root).
func (id ID) Step(i int) Step { return id.steps[i] }

// Parent returns the ID of the node's parent (the Path Navigate primitive of
// the paper). The parent of the root — and of the null ID — is the null ID.
func (id ID) Parent() ID {
	if len(id.steps) <= 1 {
		return ID{}
	}
	return ID{steps: id.steps[:len(id.steps)-1]}
}

// AncestorAt returns the ancestor ID at the given level (1 = root). It
// panics if level is out of range.
func (id ID) AncestorAt(level int) ID {
	if level < 1 || level > len(id.steps) {
		panic("dewey: AncestorAt level out of range")
	}
	return ID{steps: id.steps[:level]}
}

// Ancestors returns the IDs of all proper ancestors, from the root down to
// the parent. The paper exploits exactly this: from the ID of a node one may
// extract the IDs and labels of all its ancestors.
func (id ID) Ancestors() []ID {
	if len(id.steps) <= 1 {
		return nil
	}
	out := make([]ID, 0, len(id.steps)-1)
	for i := 1; i < len(id.steps); i++ {
		out = append(out, ID{steps: id.steps[:i]})
	}
	return out
}

// LabelPath returns the labels along the root-to-node path.
func (id ID) LabelPath() []string {
	out := make([]string, len(id.steps))
	for i, s := range id.steps {
		out[i] = s.Label
	}
	return out
}

// Compare orders IDs in document order (preorder): an ancestor sorts before
// its descendants, and siblings sort by ordinal. It returns -1, 0 or +1.
func (id ID) Compare(other ID) int {
	n := len(id.steps)
	if len(other.steps) < n {
		n = len(other.steps)
	}
	for i := 0; i < n; i++ {
		if c := id.steps[i].Ord.Compare(other.steps[i].Ord); c != 0 {
			return c
		}
		// Equal ordinals at the same level under the same parent means the
		// same node, so labels must agree; compare defensively anyway.
		if c := strings.Compare(id.steps[i].Label, other.steps[i].Label); c != 0 {
			return c
		}
	}
	switch {
	case len(id.steps) < len(other.steps):
		return -1
	case len(id.steps) > len(other.steps):
		return 1
	}
	return 0
}

// Equal reports whether two IDs identify the same node.
func (id ID) Equal(other ID) bool { return id.Compare(other) == 0 }

// IsAncestorOf reports whether id ≺≺ other: id identifies a proper ancestor
// of the node identified by other.
func (id ID) IsAncestorOf(other ID) bool {
	if id.IsNull() || len(id.steps) >= len(other.steps) {
		return false
	}
	for i, s := range id.steps {
		o := other.steps[i]
		if s.Label != o.Label || !s.Ord.Equal(o.Ord) {
			return false
		}
	}
	return true
}

// IsParentOf reports whether id ≺ other: id identifies the parent of the
// node identified by other.
func (id ID) IsParentOf(other ID) bool {
	return len(id.steps)+1 == len(other.steps) && id.IsAncestorOf(other)
}

// IsAncestorOrSelf reports id == other or id ≺≺ other.
func (id ID) IsAncestorOrSelf(other ID) bool {
	return id.Equal(other) || id.IsAncestorOf(other)
}

// HasAncestorLabeled reports whether any proper ancestor of the node carries
// the given label — the label-path reasoning used by the paper's
// inserted-ID-driven pruning (Proposition 3.8) and its deletion counterpart
// (Proposition 4.7).
func (id ID) HasAncestorLabeled(label string) bool {
	for i := 0; i < len(id.steps)-1; i++ {
		if id.steps[i].Label == label {
			return true
		}
	}
	return false
}

// SelfOrAncestorLabeled reports whether the node itself or any ancestor
// carries the given label.
func (id ID) SelfOrAncestorLabeled(label string) bool {
	for _, s := range id.steps {
		if s.Label == label {
			return true
		}
	}
	return false
}

// String renders the ID in the paper's subscript style, e.g. "a1.c1.b2",
// except ordinals are printed as their component vectors when they have
// grown past a single component.
func (id ID) String() string {
	if id.IsNull() {
		return "ε"
	}
	var b strings.Builder
	for i, s := range id.steps {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(s.Label)
		for j, c := range s.Ord {
			if j > 0 {
				b.WriteByte('_')
			}
			writeUint(&b, c/Gap, c%Gap)
		}
	}
	return b.String()
}

func writeUint(b *strings.Builder, q, r uint64) {
	if r == 0 {
		b.WriteString(utoa(q))
		return
	}
	b.WriteString(utoa(q))
	b.WriteByte('+')
	b.WriteString(utoa(r))
}

func utoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Key returns a compact string usable as a map key, unique per node. The
// encoding is length-prefixed and therefore injective.
func (id ID) Key() string {
	var b strings.Builder
	putVarint(&b, uint64(len(id.steps)))
	for _, s := range id.steps {
		putVarint(&b, uint64(len(s.Label)))
		b.WriteString(s.Label)
		putVarint(&b, uint64(len(s.Ord)))
		for _, c := range s.Ord {
			putVarint(&b, c)
		}
	}
	return b.String()
}

func putVarint(b *strings.Builder, v uint64) {
	for v >= 0x80 {
		b.WriteByte(byte(v) | 0x80)
		v >>= 7
	}
	b.WriteByte(byte(v))
}
