package dewey

import (
	"strings"
)

// Step is one component of a structural ID: the label of an ancestor (or of
// the node itself, for the last step) and its dynamic ordinal among its
// siblings.
type Step struct {
	Label string
	Ord   Ord
	end   int // offset in the cached key just past this step's frame
}

// ID is a Compact Dynamic Dewey identifier: the sequence of steps from the
// document root down to the node. The zero value is the "null" ID, which
// identifies no node; it compares before every real ID.
//
// Every ID carries a cached order-preserving binary key (see key.go)
// computed once at construction, so Compare/Equal/IsAncestorOf/Key are
// single string operations with zero allocation.
type ID struct {
	steps []Step
	key   string
}

// NewRoot returns the ID of a document root labeled label.
func NewRoot(label string) ID {
	return newID([]Step{{Label: label, Ord: Ord{Gap}}})
}

// Child returns the ID of a child of id with the given label and ordinal.
// The child's key extends the parent's cached key by one frame; the frame is
// staged in a stack buffer and the key assembled in an exact-size Builder, so
// the whole construction costs one step-slice and one string allocation.
func (id ID) Child(label string, ord Ord) ID {
	steps := make([]Step, len(id.steps)+1)
	copy(steps, id.steps)
	var tmp [64]byte
	frame := appendFrame(tmp[:0], label, ord)
	var sb strings.Builder
	sb.Grow(len(id.key) + len(frame))
	sb.WriteString(id.key)
	sb.Write(frame)
	key := sb.String()
	steps[len(id.steps)] = Step{Label: label, Ord: ord, end: len(key)}
	return ID{steps: steps, key: key}
}

// IsNull reports whether id is the zero (null) ID.
func (id ID) IsNull() bool { return len(id.steps) == 0 }

// Level returns the depth of the node: 1 for the root, 0 for the null ID.
func (id ID) Level() int { return len(id.steps) }

// Label returns the node's own label (the label of the last step), or ""
// for the null ID.
func (id ID) Label() string {
	if id.IsNull() {
		return ""
	}
	return id.steps[len(id.steps)-1].Label
}

// Step returns the i-th step (0-based from the root).
func (id ID) Step(i int) Step { return id.steps[i] }

// Parent returns the ID of the node's parent (the Path Navigate primitive of
// the paper). The parent of the root — and of the null ID — is the null ID.
// Both the step slice and the cached key are shared sub-slices: no
// allocation.
func (id ID) Parent() ID {
	if len(id.steps) <= 1 {
		return ID{}
	}
	n := len(id.steps) - 1
	return ID{steps: id.steps[:n], key: id.key[:id.steps[n-1].end]}
}

// AncestorAt returns the ancestor ID at the given level (1 = root), sharing
// the receiver's backing storage (no allocation). It panics if level is out
// of range.
func (id ID) AncestorAt(level int) ID {
	if level < 1 || level > len(id.steps) {
		panic("dewey: AncestorAt level out of range")
	}
	return ID{steps: id.steps[:level], key: id.key[:id.steps[level-1].end]}
}

// Ancestors returns the IDs of all proper ancestors, from the root down to
// the parent. The paper exploits exactly this: from the ID of a node one may
// extract the IDs and labels of all its ancestors.
func (id ID) Ancestors() []ID {
	if len(id.steps) <= 1 {
		return nil
	}
	out := make([]ID, 0, len(id.steps)-1)
	for i := 1; i < len(id.steps); i++ {
		out = append(out, id.AncestorAt(i))
	}
	return out
}

// LabelPath returns the labels along the root-to-node path.
func (id ID) LabelPath() []string {
	out := make([]string, len(id.steps))
	for i, s := range id.steps {
		out[i] = s.Label
	}
	return out
}

// Compare orders IDs in document order (preorder): an ancestor sorts before
// its descendants, and siblings sort by ordinal. It returns -1, 0 or +1.
// The cached keys are order-isomorphic to the step-wise comparison (ordinal
// first, then — defensively — label, per level), so this is one string
// comparison.
func (id ID) Compare(other ID) int {
	return strings.Compare(id.key, other.key)
}

// Equal reports whether two IDs identify the same node.
func (id ID) Equal(other ID) bool { return id.key == other.key }

// IsAncestorOf reports whether id ≺≺ other: id identifies a proper ancestor
// of the node identified by other. Thanks to the frame-aligned key encoding
// this is a single prefix check.
func (id ID) IsAncestorOf(other ID) bool {
	return len(id.steps) > 0 && len(id.key) < len(other.key) &&
		other.key[:len(id.key)] == id.key
}

// IsParentOf reports whether id ≺ other: id identifies the parent of the
// node identified by other.
func (id ID) IsParentOf(other ID) bool {
	return len(id.steps)+1 == len(other.steps) && id.IsAncestorOf(other)
}

// IsAncestorOrSelf reports id == other or id ≺≺ other.
func (id ID) IsAncestorOrSelf(other ID) bool {
	return id.Equal(other) || id.IsAncestorOf(other)
}

// HasAncestorLabeled reports whether any proper ancestor of the node carries
// the given label — the label-path reasoning used by the paper's
// inserted-ID-driven pruning (Proposition 3.8) and its deletion counterpart
// (Proposition 4.7).
func (id ID) HasAncestorLabeled(label string) bool {
	for i := 0; i < len(id.steps)-1; i++ {
		if id.steps[i].Label == label {
			return true
		}
	}
	return false
}

// SelfOrAncestorLabeled reports whether the node itself or any ancestor
// carries the given label.
func (id ID) SelfOrAncestorLabeled(label string) bool {
	for _, s := range id.steps {
		if s.Label == label {
			return true
		}
	}
	return false
}

// String renders the ID in the paper's subscript style, e.g. "a1.c1.b2",
// except ordinals are printed as their component vectors when they have
// grown past a single component.
func (id ID) String() string {
	if id.IsNull() {
		return "ε"
	}
	var b strings.Builder
	for i, s := range id.steps {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(s.Label)
		for j, c := range s.Ord {
			if j > 0 {
				b.WriteByte('_')
			}
			writeUint(&b, c/Gap, c%Gap)
		}
	}
	return b.String()
}

func writeUint(b *strings.Builder, q, r uint64) {
	if r == 0 {
		b.WriteString(utoa(q))
		return
	}
	b.WriteString(utoa(q))
	b.WriteByte('+')
	b.WriteString(utoa(r))
}

func utoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Key returns the cached binary key: a compact string usable as a map key,
// unique per node (the frame encoding is injective), whose byte order equals
// document order. Zero allocation — the string is computed at construction.
func (id ID) Key() string { return id.key }

// KeyAt returns Key() of the ancestor at the given level (1 = root) without
// constructing the ancestor ID: frames align, so it is a shared key prefix.
// Hash probes over ancestor keys (structural joins, covers, affected sets)
// use this to stay allocation-free. It panics if level is out of range.
func (id ID) KeyAt(level int) string {
	if level < 1 || level > len(id.steps) {
		panic("dewey: KeyAt level out of range")
	}
	return id.key[:id.steps[level-1].end]
}
