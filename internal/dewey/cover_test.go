package dewey

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCoverContains(t *testing.T) {
	a := NewRoot("a")
	c := a.Child("c", OrdAt(0))
	b1 := c.Child("b", OrdAt(0))
	f := a.Child("f", OrdAt(1))
	b2 := f.Child("b", OrdAt(0))

	cover := NewCover([]ID{c})
	cases := []struct {
		id   ID
		want bool
	}{
		{c, true},   // the root itself
		{b1, true},  // inside
		{a, false},  // ancestor of the root
		{f, false},  // sibling subtree
		{b2, false}, // inside sibling
	}
	for i, tc := range cases {
		if got := cover.Contains(tc.id); got != tc.want {
			t.Errorf("case %d: Contains(%v)=%v want %v", i, tc.id, got, tc.want)
		}
	}
	if cover.ContainsStrict(c) {
		t.Error("ContainsStrict must exclude the root itself")
	}
	if !cover.ContainsStrict(b1) {
		t.Error("ContainsStrict must include proper descendants")
	}
	if cover.Len() != 1 {
		t.Errorf("Len = %d", cover.Len())
	}
}

func TestCoverEmptyAndMulti(t *testing.T) {
	a := NewRoot("a")
	x := a.Child("x", OrdAt(0))
	y := a.Child("y", OrdAt(1))
	empty := NewCover(nil)
	if empty.Contains(x) || empty.ContainsStrict(x) || empty.Len() != 0 {
		t.Fatal("empty cover misbehaves")
	}
	multi := NewCover([]ID{x, y})
	if !multi.Contains(x) || !multi.Contains(y) || multi.Contains(a) {
		t.Fatal("multi-root cover misbehaves")
	}
	// Nested roots are harmless.
	xc := x.Child("c", OrdAt(0))
	nested := NewCover([]ID{x, xc})
	if !nested.Contains(xc.Child("d", OrdAt(0))) {
		t.Fatal("nested cover misses deep node")
	}
}

// TestCoverMatchesBruteForce: cover membership equals the obvious
// any-root-is-ancestor-or-self check on random trees.
func TestCoverMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Build a random set of IDs sharing a root.
		var ids []ID
		root := NewRoot("r")
		ids = append(ids, root)
		for i := 0; i < 20; i++ {
			base := ids[rng.Intn(len(ids))]
			ids = append(ids, base.Child(string(rune('a'+rng.Intn(3))), OrdAt(rng.Intn(4))))
		}
		var roots []ID
		for _, id := range ids {
			if rng.Intn(4) == 0 && id.Level() > 1 {
				roots = append(roots, id)
			}
		}
		cover := NewCover(roots)
		for _, id := range ids {
			want := false
			for _, r := range roots {
				if r.IsAncestorOrSelf(id) {
					want = true
					break
				}
			}
			if cover.Contains(id) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Encode/Decode round-trips arbitrary randomly-built IDs.
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		id := NewRoot("r")
		for i := 0; i < rng.Intn(6); i++ {
			ord := Ord{}
			for j := 0; j <= rng.Intn(3); j++ {
				ord = append(ord, uint64(rng.Intn(1<<30)))
			}
			id = id.Child(string(rune('a'+rng.Intn(26))), ord)
		}
		var d Dict
		buf := id.Encode(&d, nil)
		got, n, err := Decode(&d, buf)
		return err == nil && n == len(buf) && got.Equal(id)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
