package dewey

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// stepwiseCompare is the reference document-order comparison the cached key
// must be order-isomorphic to: ordinal first, then label, level by level,
// with step-prefixes (ancestors) first.
func stepwiseCompare(a, b ID) int {
	n := a.Level()
	if b.Level() < n {
		n = b.Level()
	}
	for i := 0; i < n; i++ {
		sa, sb := a.Step(i), b.Step(i)
		if c := sa.Ord.Compare(sb.Ord); c != 0 {
			return c
		}
		if c := strings.Compare(sa.Label, sb.Label); c != 0 {
			return c
		}
	}
	switch {
	case a.Level() < b.Level():
		return -1
	case a.Level() > b.Level():
		return 1
	}
	return 0
}

// stepwiseAncestor is the reference ≺≺ check.
func stepwiseAncestor(a, b ID) bool {
	if a.IsNull() || a.Level() >= b.Level() {
		return false
	}
	for i := 0; i < a.Level(); i++ {
		sa, sb := a.Step(i), b.Step(i)
		if sa.Label != sb.Label || !sa.Ord.Equal(sb.Ord) {
			return false
		}
	}
	return true
}

// keyLabels deliberately includes empty, 0x00-bearing, 0x01/0xFF-bearing and
// prefix-of-each-other labels to stress the escape and terminator bytes.
var keyLabels = []string{
	"a", "b", "ab", "", "person", "#text", "@id", "~gold",
	"a\x00b", "a\x00", "\x00", "\x01", "a\x01", "\xff", "a\xffz", "日本",
}

// randOrdFor returns adversarial ordinals: single and multi component,
// boundary values, and vectors that are strict prefixes of one another.
func randOrdFor(r *rand.Rand) Ord {
	vals := []uint64{0, 1, 2, Gap - 1, Gap, Gap + 1, 255, 256, 1 << 16, 1 << 32, ^uint64(0)}
	n := 1 + r.Intn(3)
	o := make(Ord, n)
	for i := range o {
		o[i] = vals[r.Intn(len(vals))]
	}
	return o
}

// randIDKey builds a random ID, sometimes branching off a prefix of a
// previously built one so that ancestor/sibling relations actually occur.
func randIDKey(r *rand.Rand, prev ID) ID {
	var id ID
	if !prev.IsNull() && r.Intn(2) == 0 {
		id = prev.AncestorAt(1 + r.Intn(prev.Level()))
	} else {
		id = NewRoot(keyLabels[r.Intn(len(keyLabels))])
	}
	for depth := r.Intn(5); depth > 0; depth-- {
		id = id.Child(keyLabels[r.Intn(len(keyLabels))], randOrdFor(r))
	}
	return id
}

func checkKeyProperties(t *testing.T, a, b ID) {
	t.Helper()
	if got, want := sign(bytes.Compare([]byte(a.Key()), []byte(b.Key()))), sign(stepwiseCompare(a, b)); got != want {
		t.Fatalf("key order mismatch: bytes.Compare=%d stepwise=%d for %v / %v (%q / %q)",
			got, want, a, b, a.Key(), b.Key())
	}
	if got, want := sign(a.Compare(b)), sign(stepwiseCompare(a, b)); got != want {
		t.Fatalf("Compare mismatch: %d vs stepwise %d for %v / %v", got, want, a, b)
	}
	if a.Equal(b) != (stepwiseCompare(a, b) == 0) {
		t.Fatalf("Equal mismatch for %v / %v", a, b)
	}
	prefix := !a.IsNull() && len(a.Key()) < len(b.Key()) && strings.HasPrefix(b.Key(), a.Key())
	if anc := stepwiseAncestor(a, b); anc != prefix || anc != a.IsAncestorOf(b) {
		t.Fatalf("ancestor mismatch: stepwise=%v prefix=%v IsAncestorOf=%v for %v / %v",
			anc, prefix, a.IsAncestorOf(b), a, b)
	}
	// Injectivity: equal keys must mean structurally identical IDs.
	if a.Key() == b.Key() && stepwiseCompare(a, b) != 0 {
		t.Fatalf("key collision: %v vs %v share key %q", a, b, a.Key())
	}
}

func sign(c int) int {
	switch {
	case c < 0:
		return -1
	case c > 0:
		return 1
	}
	return 0
}

func TestKeyOrderIsomorphic(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var prev ID
	for i := 0; i < 5000; i++ {
		a := randIDKey(r, prev)
		b := randIDKey(r, a)
		prev = b
		checkKeyProperties(t, a, b)
		checkKeyProperties(t, b, a)
		checkKeyProperties(t, a, a)
	}
}

func TestKeyAtMatchesAncestorKeys(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 1000; i++ {
		id := randIDKey(r, ID{})
		for lvl := 1; lvl <= id.Level(); lvl++ {
			anc := id.AncestorAt(lvl)
			if got := id.KeyAt(lvl); got != anc.Key() {
				t.Fatalf("KeyAt(%d)=%q != AncestorAt(%d).Key()=%q for %v", lvl, got, lvl, anc.Key(), id)
			}
		}
		if !id.Parent().IsNull() && id.Parent().Key() != id.KeyAt(id.Level()-1) {
			t.Fatalf("Parent key mismatch for %v", id)
		}
	}
}

func TestKeyAtPanicsOutOfRange(t *testing.T) {
	id := NewRoot("a").Child("b", OrdAt(0))
	for _, lvl := range []int{0, 3, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("KeyAt(%d) did not panic", lvl)
				}
			}()
			id.KeyAt(lvl)
		}()
	}
}

func TestNullIDKey(t *testing.T) {
	var null ID
	if null.Key() != "" {
		t.Fatalf("null key = %q, want empty", null.Key())
	}
	root := NewRoot("a")
	if !(null.Compare(root) < 0) {
		t.Fatal("null must compare before every real ID")
	}
	if null.IsAncestorOf(root) {
		t.Fatal("null must not be an ancestor of anything")
	}
}

// FuzzKeyOrder drives the same properties from fuzzed build programs: each
// byte pair appends one child step (label index, ordinal recipe), and a
// split byte decides where the second ID branches off the first.
func FuzzKeyOrder(f *testing.F) {
	f.Add([]byte{0x00}, []byte{0x01, 0x02}, byte(0))
	f.Add([]byte{0x10, 0x21, 0x32}, []byte{0x10, 0x21}, byte(2))
	f.Add([]byte{0xff, 0x00, 0x7f}, []byte{0xfe, 0x01}, byte(1))
	f.Fuzz(func(t *testing.T, pa, pb []byte, split byte) {
		build := func(base ID, prog []byte) ID {
			id := base
			if id.IsNull() {
				if len(prog) == 0 {
					return NewRoot(keyLabels[0])
				}
				id = NewRoot(keyLabels[int(prog[0])%len(keyLabels)])
				prog = prog[1:]
			}
			for _, pb := range prog {
				label := keyLabels[int(pb>>4)%len(keyLabels)]
				ord := Ord{uint64(pb&0x0f) * 3}
				if pb&0x08 != 0 {
					ord = append(ord, uint64(pb>>2))
				}
				id = id.Child(label, ord)
			}
			return id
		}
		a := build(ID{}, pa)
		base := ID{}
		if lvl := int(split) % (a.Level() + 1); lvl > 0 {
			base = a.AncestorAt(lvl)
		}
		b := build(base, pb)
		checkKeyProperties(t, a, b)
		checkKeyProperties(t, b, a)
		for lvl := 1; lvl <= a.Level(); lvl++ {
			if a.KeyAt(lvl) != a.AncestorAt(lvl).Key() {
				t.Fatalf("KeyAt(%d) mismatch for %v", lvl, a)
			}
		}
	})
}
