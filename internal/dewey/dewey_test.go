package dewey

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestOrdCompareBasics(t *testing.T) {
	cases := []struct {
		a, b Ord
		want int
	}{
		{Ord{1}, Ord{2}, -1},
		{Ord{2}, Ord{2}, 0},
		{Ord{3}, Ord{2}, 1},
		{Ord{2}, Ord{2, 1}, -1},
		{Ord{2, 1}, Ord{2}, 1},
		{Ord{2, 0, 5}, Ord{2, 1}, -1},
		{Ord{2, 0, 5}, Ord{2}, 1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v)=%d want %d", c.a, c.b, got, c.want)
		}
		if got := c.b.Compare(c.a); got != -c.want {
			t.Errorf("Compare(%v,%v)=%d want %d", c.b, c.a, got, -c.want)
		}
	}
}

func TestOrdAtMonotone(t *testing.T) {
	for i := 0; i < 100; i++ {
		if OrdAt(i).Compare(OrdAt(i+1)) >= 0 {
			t.Fatalf("OrdAt(%d) not < OrdAt(%d)", i, i+1)
		}
	}
}

func TestBetweenEndpoints(t *testing.T) {
	first := Between(nil, nil)
	if len(first) == 0 {
		t.Fatal("Between(nil,nil) empty")
	}
	lo := Between(nil, first)
	if lo.Compare(first) >= 0 {
		t.Fatalf("Between(nil,%v)=%v not strictly below", first, lo)
	}
	hi := Between(first, nil)
	if hi.Compare(first) <= 0 {
		t.Fatalf("Between(%v,nil)=%v not strictly above", first, hi)
	}
}

func TestBetweenAdjacent(t *testing.T) {
	a, b := Ord{5}, Ord{6}
	m := Between(a, b)
	if m.Compare(a) <= 0 || m.Compare(b) >= 0 {
		t.Fatalf("Between(%v,%v)=%v out of range", a, b, m)
	}
}

func TestBetweenPanicsOnBadOrder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for a >= b")
		}
	}()
	Between(Ord{7}, Ord{6})
}

// TestBetweenStress repeatedly inserts at random positions in an ordered
// list and checks that the order stays strict and no existing ordinal ever
// changes (the no-relabeling property).
func TestBetweenStress(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ords := []Ord{Between(nil, nil)}
	for i := 0; i < 3000; i++ {
		pos := rng.Intn(len(ords) + 1)
		var lo, hi Ord
		if pos > 0 {
			lo = ords[pos-1]
		}
		if pos < len(ords) {
			hi = ords[pos]
		}
		mid := Between(lo, hi)
		if lo != nil && mid.Compare(lo) <= 0 {
			t.Fatalf("step %d: %v not > %v", i, mid, lo)
		}
		if hi != nil && mid.Compare(hi) >= 0 {
			t.Fatalf("step %d: %v not < %v", i, mid, hi)
		}
		ords = append(ords[:pos], append([]Ord{mid}, ords[pos:]...)...)
	}
	if !sort.SliceIsSorted(ords, func(i, j int) bool { return ords[i].Compare(ords[j]) < 0 }) {
		t.Fatal("list not sorted after random insertions")
	}
}

func TestBetweenFrontInsertions(t *testing.T) {
	// Repeated front insertion must keep producing strictly smaller ordinals.
	cur := Between(nil, nil)
	for i := 0; i < 200; i++ {
		next := Between(nil, cur)
		if next.Compare(cur) >= 0 {
			t.Fatalf("front insertion %d: %v not < %v", i, next, cur)
		}
		cur = next
	}
}

func buildSampleID() ID {
	// a1 / c1 / b1 as in the paper's Figure 2.
	a := NewRoot("a")
	c := a.Child("c", OrdAt(0))
	return c.Child("b", OrdAt(0))
}

func TestIDStructure(t *testing.T) {
	b := buildSampleID()
	if b.Level() != 3 || b.Label() != "b" {
		t.Fatalf("level/label = %d/%q", b.Level(), b.Label())
	}
	if got := b.LabelPath(); len(got) != 3 || got[0] != "a" || got[1] != "c" || got[2] != "b" {
		t.Fatalf("LabelPath = %v", got)
	}
	c := b.Parent()
	if c.Label() != "c" || !c.IsParentOf(b) || !c.IsAncestorOf(b) {
		t.Fatal("parent relationships broken")
	}
	a := c.Parent()
	if !a.IsAncestorOf(b) || a.IsParentOf(b) {
		t.Fatal("ancestor relationships broken")
	}
	if a.Parent().IsNull() != true {
		t.Fatal("root parent should be null")
	}
	anc := b.Ancestors()
	if len(anc) != 2 || anc[0].Label() != "a" || anc[1].Label() != "c" {
		t.Fatalf("Ancestors = %v", anc)
	}
}

func TestIDCompareDocumentOrder(t *testing.T) {
	a := NewRoot("a")
	c := a.Child("c", OrdAt(0))
	b1 := c.Child("b", OrdAt(0))
	f := a.Child("f", OrdAt(1))
	b2 := f.Child("b", OrdAt(0))
	order := []ID{a, c, b1, f, b2}
	for i := range order {
		for j := range order {
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got := order[i].Compare(order[j]); got != want {
				t.Errorf("Compare(%v,%v)=%d want %d", order[i], order[j], got, want)
			}
		}
	}
}

func TestHasAncestorLabeled(t *testing.T) {
	b := buildSampleID()
	if !b.HasAncestorLabeled("a") || !b.HasAncestorLabeled("c") {
		t.Fatal("missing ancestors")
	}
	if b.HasAncestorLabeled("b") {
		t.Fatal("b is not its own ancestor")
	}
	if !b.SelfOrAncestorLabeled("b") {
		t.Fatal("SelfOrAncestorLabeled should include self")
	}
}

func TestMatchesPath(t *testing.T) {
	b := buildSampleID() // a/c/b
	cases := []struct {
		steps []PathStep
		want  bool
	}{
		{[]PathStep{{Label: "a"}, {Label: "c"}, {Label: "b"}}, true},
		{[]PathStep{{Label: "a"}, {Label: "b", Desc: true}}, true},
		{[]PathStep{{Label: "b", Desc: true}}, true},
		{[]PathStep{{Label: "a"}, {Label: "b"}}, false},
		{[]PathStep{{Label: "a"}, {Label: "*"}, {Label: "b"}}, true},
		{[]PathStep{{Label: "c", Desc: true}, {Label: "b", Desc: true}}, true},
		{[]PathStep{{Label: "f", Desc: true}, {Label: "b", Desc: true}}, false},
		{[]PathStep{{Label: "a"}, {Label: "c"}}, false}, // must end at b
		{nil, false},
	}
	for i, c := range cases {
		if got := b.MatchesPath(c.steps); got != c.want {
			t.Errorf("case %d: MatchesPath=%v want %v", i, got, c.want)
		}
	}
}

func TestAncestorMatchingPath(t *testing.T) {
	b := buildSampleID()
	got := b.AncestorMatchingPath([]PathStep{{Label: "c", Desc: true}})
	if got.IsNull() || got.Label() != "c" {
		t.Fatalf("AncestorMatchingPath = %v", got)
	}
	if !b.AncestorMatchingPath([]PathStep{{Label: "x", Desc: true}}).IsNull() {
		t.Fatal("expected null for unmatched path")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	var d Dict
	ids := []ID{
		NewRoot("site"),
		buildSampleID(),
		NewRoot("a").Child("long-label", Ord{1, 2, 3}).Child("x", Ord{Gap}),
	}
	for _, id := range ids {
		buf := id.Encode(&d, nil)
		got, n, err := Decode(&d, buf)
		if err != nil {
			t.Fatalf("Decode(%v): %v", id, err)
		}
		if n != len(buf) {
			t.Fatalf("Decode consumed %d of %d bytes", n, len(buf))
		}
		if !got.Equal(id) {
			t.Fatalf("round trip: got %v want %v", got, id)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	var d Dict
	id := buildSampleID()
	buf := id.Encode(&d, nil)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := Decode(&d, buf[:cut]); err == nil && cut < len(buf) {
			// Some prefixes decode as a shorter valid ID only if the step
			// count happens to be smaller; with a fixed encoding the first
			// byte is the true count, so any truncation must error.
			t.Fatalf("Decode of %d-byte prefix unexpectedly succeeded", cut)
		}
	}
	var empty Dict
	if _, _, err := Decode(&empty, buf); err == nil {
		t.Fatal("expected unknown-label-code error")
	}
}

func TestKeyInjective(t *testing.T) {
	a := NewRoot("a")
	ids := []ID{
		a,
		a.Child("b", OrdAt(0)),
		a.Child("b", OrdAt(1)),
		a.Child("bb", OrdAt(0)),
		a.Child("b", Ord{Gap, 1}),
		a.Child("b", OrdAt(0)).Child("c", OrdAt(0)),
	}
	seen := map[string]ID{}
	for _, id := range ids {
		k := id.Key()
		if other, dup := seen[k]; dup {
			t.Fatalf("key collision between %v and %v", id, other)
		}
		seen[k] = id
	}
}

// Property: Compare is antisymmetric and consistent with IsAncestorOf.
func TestCompareAncestorProperty(t *testing.T) {
	gen := func(seed int64) (ID, ID) {
		rng := rand.New(rand.NewSource(seed))
		mk := func() ID {
			id := NewRoot("r")
			depth := 1 + rng.Intn(4)
			for i := 0; i < depth; i++ {
				id = id.Child(string(rune('a'+rng.Intn(3))), OrdAt(rng.Intn(3)))
			}
			return id
		}
		return mk(), mk()
	}
	f := func(seed int64) bool {
		x, y := gen(seed)
		if x.Compare(y) != -y.Compare(x) {
			return false
		}
		if x.IsAncestorOf(y) && x.Compare(y) != -1 {
			return false
		}
		if x.IsParentOf(y) && !x.IsAncestorOf(y) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
