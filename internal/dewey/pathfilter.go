package dewey

// PathStep is one step of a linear label-path condition used by the Path
// Filter physical operator: a label (or "*" wildcard) reached through either
// a parent-child ("/") or ancestor-descendant ("//") edge.
type PathStep struct {
	Label string // element label, or "*" for any
	Desc  bool   // true for a // edge into this step, false for /
}

// MatchesPath reports whether the node's root-to-self label path satisfies
// the given linear path condition, anchored at the root. This is the Path
// Filter primitive of the paper: it needs only the ID, never the document.
func (id ID) MatchesPath(steps []PathStep) bool {
	return matchPath(id.LabelPath(), steps)
}

// AncestorMatchingPath returns the lowest ancestor-or-self of id whose label
// path satisfies the condition, or the null ID if none does.
func (id ID) AncestorMatchingPath(steps []PathStep) ID {
	labels := id.LabelPath()
	for lvl := len(labels); lvl >= 1; lvl-- {
		if matchPath(labels[:lvl], steps) {
			return id.AncestorAt(lvl)
		}
	}
	return ID{}
}

// matchPath checks whether the full label sequence matches the path
// condition end-to-end (the last step must match the last label).
func matchPath(labels []string, steps []PathStep) bool {
	// Dynamic program over (label index, step index): ok[j] = the first j
	// steps can consume some prefix of labels ending exactly at position i.
	if len(steps) == 0 {
		return false
	}
	n, m := len(labels), len(steps)
	// reach[i][j]: steps[:j] can be matched so that step j-1 is matched at
	// label position i-1. Use rolling rows keyed by label position.
	prev := make([]bool, n+1) // prev[i]: steps[:j-1] matched ending at i-1
	cur := make([]bool, n+1)
	prev[0] = true
	for j := 1; j <= m; j++ {
		st := steps[j-1]
		for i := range cur {
			cur[i] = false
		}
		for i := 1; i <= n; i++ {
			if !labelMatches(st.Label, labels[i-1]) {
				continue
			}
			if !st.Desc {
				// Parent-child: previous step matched exactly at i-1.
				if prev[i-1] {
					cur[i] = true
				}
				continue
			}
			// Descendant: previous step matched at any position < i.
			for k := 0; k < i; k++ {
				if prev[k] {
					cur[i] = true
					break
				}
			}
		}
		prev, cur = cur, prev
	}
	return prev[n]
}

func labelMatches(pattern, label string) bool {
	return pattern == "*" || pattern == label
}
