package dewey

import (
	"strings"
	"testing"
)

func TestStringRendering(t *testing.T) {
	if got := (ID{}).String(); got != "ε" {
		t.Fatalf("null ID = %q", got)
	}
	a := NewRoot("a")
	c := a.Child("c", OrdAt(0))
	b := c.Child("b", OrdAt(1))
	if got := b.String(); got != "a1.c1.b2" {
		t.Fatalf("String = %q", got)
	}
	// Fractional ordinals render with their components.
	mid := a.Child("x", Between(OrdAt(0), OrdAt(1)))
	s := mid.String()
	if !strings.HasPrefix(s, "a1.x1") {
		t.Fatalf("mid = %q", s)
	}
	// Multi-component ordinal from adjacent insertion.
	tight := a.Child("y", Between(Ord{5}, Ord{6}))
	if got := tight.String(); !strings.Contains(got, "_") && !strings.Contains(got, "+") {
		t.Fatalf("multi-component ordinal rendering = %q", got)
	}
	if got := utoa(0); got != "0" {
		t.Fatalf("utoa(0) = %q", got)
	}
}

func TestStepAccessorsAndClone(t *testing.T) {
	a := NewRoot("a")
	b := a.Child("b", OrdAt(2))
	st := b.Step(1)
	if st.Label != "b" || !st.Ord.Equal(OrdAt(2)) {
		t.Fatalf("Step = %+v", st)
	}
	if b.Label() != "b" || (ID{}).Label() != "" {
		t.Fatal("Label wrong")
	}
	o := Ord{1, 2}
	c := o.Clone()
	c[0] = 99
	if o[0] != 1 {
		t.Fatal("Clone shares storage")
	}
	if Ord(nil).Clone() != nil {
		t.Fatal("nil Clone should be nil")
	}
}

func TestAncestorAtBounds(t *testing.T) {
	a := NewRoot("a").Child("b", OrdAt(0))
	for _, lvl := range []int{0, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AncestorAt(%d) should panic", lvl)
				}
			}()
			a.AncestorAt(lvl)
		}()
	}
}

func TestDictLen(t *testing.T) {
	var d Dict
	if d.Len() != 0 {
		t.Fatal("fresh dict non-empty")
	}
	d.Code("x")
	d.Code("y")
	d.Code("x")
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
	if _, err := d.Label(5); err == nil {
		t.Fatal("out-of-range code accepted")
	}
}

func TestAfterLastOverflowPath(t *testing.T) {
	// Near the top of the uint64 range, afterLast must extend instead of
	// overflowing.
	huge := Ord{^uint64(0) - 5}
	next := Between(huge, nil)
	if next.Compare(huge) <= 0 {
		t.Fatalf("afterLast(%v) = %v not greater", huge, next)
	}
}
