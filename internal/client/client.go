// Package client is the typed Go client for the xivm multi-tenant serving
// API (internal/server): admin-plane database lifecycle (create / drop /
// list), per-database data plane (views / xpath / update), uniform
// error-envelope decoding into *APIError, and transparent retry of 429
// backpressure rejections honoring the server's Retry-After header.
//
//	c := client.New("http://localhost:8080")
//	c.CreateDB(ctx, client.CreateDB{Name: "tenant1", Document: "<site/>"})
//	db := c.DB("tenant1")
//	db.Update(ctx, `insert <x/> into /site`)
//	db.View(ctx, "Q1")
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"xivm/internal/server"
)

// APIError is a decoded error envelope: the HTTP status plus the server's
// {"error": {"code", "message", "tenant"}} body.
type APIError struct {
	Status  int    // HTTP status code
	Code    string // machine-readable envelope code (server.Code*)
	Message string
	Tenant  string
}

func (e *APIError) Error() string {
	if e.Tenant != "" {
		return fmt.Sprintf("xivm api: %s (%d %s, tenant %s)", e.Message, e.Status, e.Code, e.Tenant)
	}
	return fmt.Sprintf("xivm api: %s (%d %s)", e.Message, e.Status, e.Code)
}

// IsRetryable reports whether the request may succeed if repeated: 429
// backpressure is the designed overload signal.
func (e *APIError) IsRetryable() bool { return e.Status == http.StatusTooManyRequests }

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the http.Client (timeouts, transports).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetries sets how many times a 429 is retried before surfacing the
// APIError (default 10). Zero disables retrying.
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithRetryCap caps one Retry-After wait (default 1s) so a misbehaving
// server cannot park the client.
func WithRetryCap(d time.Duration) Option { return func(c *Client) { c.retryCap = d } }

// Client talks to one xivm server. Safe for concurrent use.
type Client struct {
	base     string
	hc       *http.Client
	retries  int
	retryCap time.Duration
	rnd      func() float64 // jitter source in [0,1); rand.Float64 by default
}

// New builds a client for the server at base (e.g. "http://localhost:8080").
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:     strings.TrimRight(base, "/"),
		hc:       &http.Client{Timeout: 30 * time.Second},
		retries:  10,
		retryCap: time.Second,
		rnd:      rand.Float64,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// do issues one request, retrying 429s, and decodes the 2xx body into out
// (when non-nil) or the error envelope into an *APIError otherwise.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return err
		}
		apiErr, err := decode(resp, out)
		if err != nil {
			return err
		}
		if apiErr == nil {
			return nil
		}
		if !apiErr.IsRetryable() || attempt >= c.retries {
			return apiErr
		}
		if err := c.backoff(ctx, attempt, resp.Header.Get("Retry-After")); err != nil {
			return err
		}
	}
}

// backoff sleeps between retry attempts. A server-suggested Retry-After
// (seconds) is honored verbatim, capped. Without one the wait grows
// exponentially from 10ms with equal jitter, capped at retryCap — a fixed
// short pause would have every rejected client of an overloaded shard
// retry in lockstep, re-creating the very queue spike that produced the
// 429s.
func (c *Client) backoff(ctx context.Context, attempt int, retryAfter string) error {
	t := time.NewTimer(backoffDelay(attempt, retryAfter, c.retryCap, c.rnd))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// backoffBase is the first no-header retry delay; it doubles per attempt.
const backoffBase = 10 * time.Millisecond

// backoffDelay computes the attempt'th wait. With a parsable Retry-After
// it is that many seconds, capped. Otherwise it is equal-jittered
// exponential backoff: half of min(cap, 10ms<<attempt) guaranteed plus a
// random half, so concurrent retriers spread out instead of thundering
// back together.
func backoffDelay(attempt int, retryAfter string, limit time.Duration, rnd func() float64) time.Duration {
	if secs, err := strconv.Atoi(retryAfter); err == nil && secs >= 0 {
		d := time.Duration(secs) * time.Second
		if d > limit {
			d = limit
		}
		return d
	}
	d := limit
	// Guard the shift: past 30 doublings the exponential exceeds any sane
	// cap anyway.
	if attempt < 30 {
		if e := backoffBase << uint(attempt); e < limit {
			d = e
		}
	}
	half := d / 2
	return half + time.Duration(rnd()*float64(d-half))
}

// decode consumes the response body: 2xx decodes into out, everything else
// decodes the error envelope (falling back to the raw body when the server
// did not produce one).
func decode(resp *http.Response, out any) (*APIError, error) {
	defer resp.Body.Close()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if out == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			return nil, nil
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return nil, fmt.Errorf("xivm api: decoding %d response: %w", resp.StatusCode, err)
		}
		return nil, nil
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var env server.ErrorResponse
	if err := json.Unmarshal(raw, &env); err != nil || env.Error.Code == "" {
		return &APIError{
			Status:  resp.StatusCode,
			Code:    server.CodeInternal,
			Message: strings.TrimSpace(string(raw)),
		}, nil
	}
	return &APIError{
		Status:  resp.StatusCode,
		Code:    env.Error.Code,
		Message: env.Error.Message,
		Tenant:  env.Error.Tenant,
	}, nil
}

// Health fetches GET /healthz.
func (c *Client) Health(ctx context.Context) (server.HealthResponse, error) {
	var out server.HealthResponse
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &out)
	return out, err
}

// CreateDB is the admin-plane create request; Document and Views may be
// empty when the server has defaults.
type CreateDB struct {
	Name     string
	Document string
	Views    []server.ViewSpec
}

// CreateDB creates a database (POST /v1/db).
func (c *Client) CreateDB(ctx context.Context, req CreateDB) (server.CreateDBResponse, error) {
	var out server.CreateDBResponse
	body, err := json.Marshal(server.CreateDBRequest{Name: req.Name, Document: req.Document, Views: req.Views})
	if err != nil {
		return out, err
	}
	err = c.do(ctx, http.MethodPost, "/v1/db", body, &out)
	return out, err
}

// DropDB drops a database (DELETE /v1/db/{name}): its queue drains, its
// backend closes, and its directory is deleted crash-safely.
func (c *Client) DropDB(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/v1/db/"+url.PathEscape(name), nil, nil)
}

// ListDBs lists every database with its epoch/queue/size stats
// (GET /v1/db).
func (c *Client) ListDBs(ctx context.Context) ([]server.TenantStat, error) {
	var out server.ListDBsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/db", nil, &out); err != nil {
		return nil, err
	}
	return out.Databases, nil
}

// DB returns a handle on one database's data plane.
func (c *Client) DB(name string) *DB { return &DB{c: c, path: "/v1/db/" + url.PathEscape(name)} }

// DB is the data-plane handle for one database.
type DB struct {
	c    *Client
	path string
}

// Views lists the database's views (GET /v1/db/{name}/views).
func (d *DB) Views(ctx context.Context) (server.ViewsResponse, error) {
	var out server.ViewsResponse
	err := d.c.do(ctx, http.MethodGet, d.path+"/views", nil, &out)
	return out, err
}

// View fetches one view's materialized rows (GET /v1/db/{name}/views/{view}).
func (d *DB) View(ctx context.Context, view string) (server.ViewResponse, error) {
	var out server.ViewResponse
	err := d.c.do(ctx, http.MethodGet, d.path+"/views/"+url.PathEscape(view), nil, &out)
	return out, err
}

// XPath evaluates an XPath query against the database's serving epoch
// (GET /v1/db/{name}/xpath?q=…).
func (d *DB) XPath(ctx context.Context, query string) (server.XPathResponse, error) {
	var out server.XPathResponse
	err := d.c.do(ctx, http.MethodGet, d.path+"/xpath?q="+url.QueryEscape(query), nil, &out)
	return out, err
}

// Update applies one statement (POST /v1/db/{name}/update), retrying 429
// backpressure rejections with Retry-After. The returned Version is the
// epoch at which the update is readable.
func (d *DB) Update(ctx context.Context, statement string) (server.UpdateResponse, error) {
	var out server.UpdateResponse
	body, err := json.Marshal(server.UpdateRequest{Statement: statement})
	if err != nil {
		return out, err
	}
	err = d.c.do(ctx, http.MethodPost, d.path+"/update", body, &out)
	return out, err
}

// Metrics fetches the database's per-tenant stats and counters
// (GET /v1/db/{name}/metrics).
func (d *DB) Metrics(ctx context.Context) (server.TenantMetricsResponse, error) {
	var out server.TenantMetricsResponse
	err := d.c.do(ctx, http.MethodGet, d.path+"/metrics", nil, &out)
	return out, err
}

// ReplStatus fetches the database's replication position
// (GET /v1/db/{name}/repl/status).
func (d *DB) ReplStatus(ctx context.Context) (server.ReplStatusResponse, error) {
	var out server.ReplStatusResponse
	err := d.c.do(ctx, http.MethodGet, d.path+"/repl/status", nil, &out)
	return out, err
}

// ReplSnapshot fetches the newest checkpoint image for snapshot-first
// catch-up (GET /v1/db/{name}/repl/snapshot). The caller must verify it
// with wal.NewReplImage before trusting any byte of it.
func (d *DB) ReplSnapshot(ctx context.Context) (server.ReplSnapshotResponse, error) {
	var out server.ReplSnapshotResponse
	err := d.c.do(ctx, http.MethodGet, d.path+"/repl/snapshot", nil, &out)
	return out, err
}

// ReplFrames is one stream read: raw WAL frames from LSN from (up to
// maxBytes when positive), plus the next LSN to request and the leader's
// log tip at serve time. followerID, when non-empty, pins the leader's log
// suffix against truncation while this follower tails
// (GET /v1/db/{name}/repl/stream?from=…). A server answer of 410
// snapshot_required surfaces as an *APIError with that code: re-sync via
// ReplSnapshot.
func (d *DB) ReplFrames(ctx context.Context, from uint64, maxBytes int, followerID string) (frames []byte, next, leaderLast uint64, err error) {
	path := d.path + "/repl/stream?from=" + strconv.FormatUint(from, 10)
	if maxBytes > 0 {
		path += "&max_bytes=" + strconv.Itoa(maxBytes)
	}
	if followerID != "" {
		path += "&follower=" + url.QueryEscape(followerID)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, d.c.base+path, nil)
	if err != nil {
		return nil, 0, 0, err
	}
	resp, err := d.c.hc.Do(req)
	if err != nil {
		return nil, 0, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		apiErr, derr := decode(resp, nil)
		if derr != nil {
			return nil, 0, 0, derr
		}
		return nil, 0, 0, apiErr
	}
	defer resp.Body.Close()
	frames, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, 0, err
	}
	next, err = strconv.ParseUint(resp.Header.Get(server.HeaderReplNext), 10, 64)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("xivm api: bad %s header: %w", server.HeaderReplNext, err)
	}
	leaderLast, err = strconv.ParseUint(resp.Header.Get(server.HeaderReplLast), 10, 64)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("xivm api: bad %s header: %w", server.HeaderReplLast, err)
	}
	return frames, next, leaderLast, nil
}
