package client_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"xivm/internal/algebra"
	"xivm/internal/client"
	"xivm/internal/server"
	"xivm/internal/xmark"
)

// TestRetryOn429 verifies the client's backpressure contract: 429s are
// retried honoring Retry-After (capped), everything else surfaces at once,
// and disabling retries surfaces the 429 as a typed APIError.
func TestRetryOn429(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprintf(w, `{"error": {"code": "queue_full", "message": "apply queue full", "tenant": "hot"}}`)
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintf(w, `{"tenant": "hot", "version": 7, "targets": 1, "views": []}`)
	}))
	defer ts.Close()

	// Cap the 1s Retry-After to keep the test fast; two waits must still
	// actually happen.
	c := client.New(ts.URL, client.WithRetryCap(20*time.Millisecond))
	t0 := time.Now()
	ur, err := c.DB("hot").Update(context.Background(), `delete /site/x`)
	if err != nil {
		t.Fatalf("update after retries: %v", err)
	}
	if ur.Version != 7 || hits.Load() != 3 {
		t.Fatalf("version=%d hits=%d, want 7 after 3 attempts", ur.Version, hits.Load())
	}
	if waited := time.Since(t0); waited < 40*time.Millisecond {
		t.Fatalf("retries waited only %v, want two capped Retry-After pauses", waited)
	}

	hits.Store(0)
	noRetry := client.New(ts.URL, client.WithRetries(0))
	_, err = noRetry.DB("hot").Update(context.Background(), `delete /site/x`)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("retries disabled: err = %v, want *APIError", err)
	}
	if apiErr.Status != http.StatusTooManyRequests || apiErr.Code != server.CodeQueueFull || apiErr.Tenant != "hot" || !apiErr.IsRetryable() {
		t.Fatalf("APIError = %+v, want retryable 429 queue_full for hot", apiErr)
	}
	if hits.Load() != 1 {
		t.Fatalf("retries disabled but server saw %d requests", hits.Load())
	}
}

// TestErrorEnvelopeDecoding covers both error shapes: the server's uniform
// envelope and a non-envelope body (a proxy error, a panic page).
func TestErrorEnvelopeDecoding(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		switch req.URL.Path {
		case "/v1/db/ghost/views":
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprintf(w, `{"error": {"code": "no_such_db", "message": "no such database: ghost", "tenant": "ghost"}}`)
		default:
			w.WriteHeader(http.StatusBadGateway)
			fmt.Fprintf(w, "upstream exploded")
		}
	}))
	defer ts.Close()

	c := client.New(ts.URL)
	_, err := c.DB("ghost").Views(context.Background())
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if apiErr.Status != 404 || apiErr.Code != server.CodeNoSuchDB || apiErr.Tenant != "ghost" || apiErr.IsRetryable() {
		t.Fatalf("APIError = %+v, want non-retryable 404 no_such_db for ghost", apiErr)
	}

	_, err = c.ListDBs(context.Background())
	if !errors.As(err, &apiErr) {
		t.Fatalf("non-envelope err = %v, want *APIError", err)
	}
	if apiErr.Status != http.StatusBadGateway || apiErr.Code != server.CodeInternal || apiErr.Message != "upstream exploded" {
		t.Fatalf("non-envelope APIError = %+v, want 502 internal with the raw body", apiErr)
	}
}

// TestMultiTenantSmoke is the end-to-end acceptance check: 8 tenants
// created through the typed client against a real registry, interleaved
// updates so every tenant's state diverges, then per-tenant verification —
// acked versions are readable (read-your-writes), the view state equals a
// fresh recomputation of the pattern over that tenant's document, and no
// tenant sees another's writes.
func TestMultiTenantSmoke(t *testing.T) {
	const tenants = 8
	reg, err := server.NewRegistry(server.RegistryConfig{
		DefaultDoc: xmark.GenerateSmall(1),
		DefaultViews: []server.ViewSpec{
			{Name: "Q1", Pattern: xmark.View("Q1").String()},
			{Name: "Q2", Pattern: xmark.View("Q2").String()},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(reg.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		reg.Shutdown(ctx)
	}()

	ctx := context.Background()
	c := client.New(ts.URL)
	names := make([]string, 0, tenants)
	for i := 0; i < tenants; i++ {
		name := fmt.Sprintf("t%d", i)
		cr, err := c.CreateDB(ctx, client.CreateDB{Name: name})
		if err != nil {
			t.Fatalf("create %s: %v", name, err)
		}
		if cr.Tenant != name || len(cr.Views) != 2 {
			t.Fatalf("create %s response = %+v", name, cr)
		}
		names = append(names, name)
	}
	dbs, err := c.ListDBs(ctx)
	if err != nil || len(dbs) != tenants {
		t.Fatalf("list = %d dbs, err %v, want %d", len(dbs), err, tenants)
	}

	// Interleave updates round-robin: tenant i receives i+1 extra persons,
	// so every tenant's correct state is distinct.
	acked := make(map[string]uint64, tenants)
	for round := 0; round < tenants; round++ {
		for i, name := range names {
			if round > i {
				continue
			}
			stmt := fmt.Sprintf(`insert <person id="smoke-%s-%d"><name>Smoke %s %d</name></person> into /site/people`, name, round, name, round)
			ur, err := c.DB(name).Update(ctx, stmt)
			if err != nil {
				t.Fatalf("%s round %d: %v", name, round, err)
			}
			if ur.Tenant != name {
				t.Fatalf("%s ack stamped tenant %q", name, ur.Tenant)
			}
			acked[name] = ur.Version
		}
	}

	for i, name := range names {
		vr, err := c.DB(name).View(ctx, "Q1")
		if err != nil {
			t.Fatalf("%s view: %v", name, err)
		}
		if vr.Tenant != name {
			t.Fatalf("%s view stamped tenant %q", name, vr.Tenant)
		}
		if vr.Version < acked[name] {
			t.Fatalf("%s: read version %d < last acked %d", name, vr.Version, acked[name])
		}
		// The served rows must equal a fresh recomputation of the pattern
		// over this tenant's current document.
		sh, err := reg.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		snap := sh.Epoch()
		fresh := algebra.Materialize(snap.Doc(), snap.View("Q1").Pattern)
		if len(vr.Rows) != len(fresh) {
			t.Fatalf("%s: served %d Q1 rows, fresh recomputation %d", name, len(vr.Rows), len(fresh))
		}
		// Cross-tenant isolation: exactly this tenant's i+1 smoke inserts
		// are present, and nobody else's.
		xr, err := c.DB(name).XPath(ctx, "/site/people/person/name")
		if err != nil {
			t.Fatal(err)
		}
		mine, foreign := 0, 0
		for _, m := range xr.Matches {
			if strings.HasPrefix(m.Value, "Smoke ") {
				if strings.HasPrefix(m.Value, "Smoke "+name+" ") {
					mine++
				} else {
					foreign++
				}
			}
		}
		if mine != i+1 {
			t.Fatalf("%s: sees %d of its own smoke inserts, want %d", name, mine, i+1)
		}
		if foreign != 0 {
			t.Fatalf("%s: sees %d foreign smoke inserts", name, foreign)
		}
	}

	// Drop half the tenants; the survivors keep serving.
	for i := 0; i < tenants; i += 2 {
		if err := c.DropDB(ctx, names[i]); err != nil {
			t.Fatalf("drop %s: %v", names[i], err)
		}
	}
	dbs, err = c.ListDBs(ctx)
	if err != nil || len(dbs) != tenants/2 {
		t.Fatalf("list after drops = %d dbs, err %v, want %d", len(dbs), err, tenants/2)
	}
	if _, err := c.DB(names[1]).Views(ctx); err != nil {
		t.Fatalf("survivor %s stopped serving: %v", names[1], err)
	}
	var apiErr *client.APIError
	if _, err := c.DB(names[0]).Views(ctx); !errors.As(err, &apiErr) || apiErr.Code != server.CodeNoSuchDB {
		t.Fatalf("dropped %s still serving: %v", names[0], err)
	}
}
