package client

import (
	"testing"
	"time"
)

// TestBackoffDelaySchedule pins the no-header growth schedule: doubling
// from 10ms, capped at the retry cap, with equal jitter (half the step
// guaranteed, the rest random). rnd=1 exposes the full step, rnd=0 the
// guaranteed floor.
func TestBackoffDelaySchedule(t *testing.T) {
	const limit = time.Second
	full := func() float64 { return 1 }
	halfR := func() float64 { return 0 }

	wantFull := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 160 * time.Millisecond, 320 * time.Millisecond,
		640 * time.Millisecond, time.Second, time.Second, time.Second,
	}
	for attempt, want := range wantFull {
		if got := backoffDelay(attempt, "", limit, full); got != want {
			t.Fatalf("attempt %d rnd=1: got %v, want %v", attempt, got, want)
		}
		if got := backoffDelay(attempt, "", limit, halfR); got != want/2 {
			t.Fatalf("attempt %d rnd=0: got %v, want %v", attempt, got, want/2)
		}
	}

	// Huge attempt counts must not overflow the shift: capped, not negative.
	if got := backoffDelay(500, "", limit, full); got != limit {
		t.Fatalf("attempt 500: got %v, want %v", got, limit)
	}

	// Jitter stays within [half, full] for any rnd in [0,1).
	mid := func() float64 { return 0.5 }
	if got := backoffDelay(2, "", limit, mid); got != 30*time.Millisecond {
		t.Fatalf("attempt 2 rnd=0.5: got %v, want 30ms", got)
	}
}

// TestBackoffDelayRetryAfter pins header handling: parsable seconds are
// honored verbatim (no jitter), capped; garbage falls back to the
// exponential schedule.
func TestBackoffDelayRetryAfter(t *testing.T) {
	const limit = time.Second
	full := func() float64 { return 1 }

	if got := backoffDelay(0, "0", limit, full); got != 0 {
		t.Fatalf(`Retry-After "0": got %v, want 0`, got)
	}
	if got := backoffDelay(5, "1", 2*time.Second, full); got != time.Second {
		t.Fatalf(`Retry-After "1": got %v, want 1s`, got)
	}
	if got := backoffDelay(0, "30", limit, full); got != limit {
		t.Fatalf(`Retry-After "30": got %v, want cap %v`, got, limit)
	}
	// Unparsable header: same as no header.
	if got := backoffDelay(3, "soon", limit, full); got != 80*time.Millisecond {
		t.Fatalf(`Retry-After "soon": got %v, want 80ms`, got)
	}
	// Negative seconds are ignored, not honored.
	if got := backoffDelay(0, "-5", limit, full); got != 10*time.Millisecond {
		t.Fatalf(`Retry-After "-5": got %v, want 10ms`, got)
	}
}
