// Package xivm is an algebraic incremental maintenance engine for
// materialized XML views, reproducing "Algebraic Techniques for XML View
// Maintenance" (Bonifati, Goodfellow, Manolescu, Sileo; EDBT 2011 /
// extended version). See README.md for the architecture overview,
// DESIGN.md for the system inventory and experiment index, and
// EXPERIMENTS.md for paper-vs-measured results.
//
// The implementation lives under internal/ (dewey, xmltree, xpath, pattern,
// algebra, store, view, update, core, pulopt, dtd, xmark, bench); the
// executables under cmd/ (xivm, xmarkgen, xivmbench); runnable examples
// under examples/.
package xivm
