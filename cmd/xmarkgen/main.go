// Command xmarkgen generates XMark-style benchmark documents of a target
// size, deterministic per seed.
//
// Usage:
//
//	xmarkgen -size 10485760 -seed 42 -o auction.xml
package main

import (
	"flag"
	"fmt"
	"os"

	"xivm/internal/xmark"
)

func main() {
	size := flag.Int("size", 100<<10, "approximate output size in bytes")
	seed := flag.Uint64("seed", 42, "generator seed")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	doc := xmark.Generate(xmark.Config{TargetBytes: *size, Seed: *seed})
	if *out == "" {
		fmt.Print(doc)
		return
	}
	if err := os.WriteFile(*out, []byte(doc), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "xmarkgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %d bytes to %s\n", len(doc), *out)
}
