// Command xivm maintains materialized views over an XML document while
// applying update statements.
//
// Usage:
//
//	xivm -doc auction.xml \
//	     -view 'Q1=for $b in doc("a")/site/people/person[@id] return $b/name/text()' \
//	     -pattern 'V2=//a{ID}[//c{ID}]//b{ID}' \
//	     [-policy snowcaps|leaves|cost] [-engine incr|lazy|full|ivma] [-rows] [-stats] \
//	     'insert <x/> into /site' 'delete //person[phone]' …
//
// Views are declared either in the paper's conjunctive XQuery dialect
// (-view) or directly as tree patterns (-pattern). Each trailing argument
// is one update statement, applied in order; after each statement the tool
// reports per-phase timings and row deltas, and -rows dumps view contents.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // -serve exposes /debug/pprof
	"os"
	"path/filepath"
	"strings"

	"xivm/internal/core"
	"xivm/internal/obs"
	"xivm/internal/pattern"
	"xivm/internal/store"
	"xivm/internal/update"
	"xivm/internal/view"
	"xivm/internal/xmltree"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ";") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "xivm:", err)
		os.Exit(1)
	}
}

func run() error {
	var views, patterns multiFlag
	docPath := flag.String("doc", "", "XML document to load (required)")
	flag.Var(&views, "view", "NAME=view definition (repeatable)")
	flag.Var(&patterns, "pattern", "NAME=tree pattern (repeatable)")
	policy := flag.String("policy", "snowcaps", "lattice policy: snowcaps or leaves")
	engine := flag.String("engine", "incr", "maintenance engine: incr, lazy, full, or ivma")
	showRows := flag.Bool("rows", false, "print view rows after each statement")
	stats := flag.Bool("stats", false, "print per-phase timing breakdowns")
	saveDir := flag.String("save", "", "directory to write per-view binary snapshots after all statements")
	loadDir := flag.String("load", "", "directory to restore per-view snapshots from (instead of materializing)")
	metricsOut := flag.String("metrics", "", `dump engine metrics when done: "json" to stdout, or a file path`)
	serveAddr := flag.String("serve", "", "serve /debug/pprof and /debug/vars on this address (e.g. :6060)")
	flag.Parse()

	if *serveAddr != "" {
		obs.PublishExpvar("xivm", obs.Default())
		go func() { _ = http.ListenAndServe(*serveAddr, nil) }()
		fmt.Printf("serving pprof/expvar on %s\n", *serveAddr)
	}

	if *docPath == "" {
		return fmt.Errorf("-doc is required")
	}
	f, err := os.Open(*docPath)
	if err != nil {
		return err
	}
	doc, err := xmltree.Parse(f)
	f.Close()
	if err != nil {
		return err
	}

	var eopts []core.Option
	switch *policy {
	case "snowcaps":
	case "leaves":
		eopts = append(eopts, core.WithPolicy(core.PolicyLeaves))
	case "cost":
		eopts = append(eopts, core.WithPolicy(core.PolicyCost))
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}
	e := core.New(doc, eopts...)

	addView := func(spec string, compile func(string) (*pattern.Pattern, error)) error {
		name, src, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("view spec %q must be NAME=DEFINITION", spec)
		}
		p, err := compile(src)
		if err != nil {
			return fmt.Errorf("view %s: %w", name, err)
		}
		var mv *core.ManagedView
		if *loadDir != "" {
			data, err := os.ReadFile(filepath.Join(*loadDir, name+".xivm"))
			if err != nil {
				return fmt.Errorf("load view %s: %w", name, err)
			}
			rows, err := store.DecodeSnapshot(data)
			if err != nil {
				return fmt.Errorf("load view %s: %w", name, err)
			}
			mv, err = e.AddViewRows(name, p, rows)
			if err != nil {
				return err
			}
			fmt.Printf("view %-8s %s  (%d rows, restored)\n", name, p, mv.View.Len())
			return nil
		}
		mv, err = e.AddView(name, p)
		if err != nil {
			return err
		}
		fmt.Printf("view %-8s %s  (%d rows)\n", name, p, mv.View.Len())
		return nil
	}
	for _, spec := range views {
		if err := addView(spec, func(src string) (*pattern.Pattern, error) {
			def, err := view.Compile(src)
			if err != nil {
				return nil, err
			}
			return def.Pattern, nil
		}); err != nil {
			return err
		}
	}
	for _, spec := range patterns {
		if err := addView(spec, pattern.Parse); err != nil {
			return err
		}
	}
	if len(e.Views) == 0 {
		return fmt.Errorf("no views declared (-view / -pattern)")
	}

	var lazy *core.Lazy
	if *engine == "lazy" {
		lazy = core.NewLazy(e)
	}
	for _, stmt := range flag.Args() {
		st, err := update.Parse(stmt)
		if err != nil {
			return err
		}
		fmt.Printf("\n>> %s\n", stmt)
		switch *engine {
		case "lazy":
			if err := lazy.Apply(st); err != nil {
				return err
			}
			fmt.Printf("deferred (%d pending)\n", lazy.Pending())
		case "incr":
			rep, err := e.ApplyStatement(st)
			if err != nil {
				return err
			}
			fmt.Printf("targets=%d\n", rep.Targets)
			if *stats {
				fmt.Printf("find=%v (once per statement)\n", rep.FindTargets)
			}
			for _, vr := range rep.Views {
				fmt.Printf("view %-8s +%d -%d ~%d rows  terms %d/%d",
					vr.View.Name, vr.RowsAdded, vr.RowsRemoved, vr.RowsModified,
					vr.TermsSurvived, vr.TermsTotal)
				if vr.PredFallback {
					fmt.Print("  [predicate flip: recomputed]")
				}
				fmt.Println()
				if *stats {
					t := vr.Timings()
					fmt.Printf("  delta=%v expr=%v exec=%v lattice=%v\n",
						t.ComputeDelta, t.GetExpression, t.ExecuteUpdate, t.UpdateLattice)
				}
			}
		case "full":
			d, err := e.FullRecompute(st)
			if err != nil {
				return err
			}
			fmt.Printf("full recomputation in %v\n", d)
		case "ivma":
			d, err := core.NewIVMA(e).ApplyStatement(st)
			if err != nil {
				return err
			}
			fmt.Printf("ivma propagation in %v\n", d)
		default:
			return fmt.Errorf("unknown engine %q", *engine)
		}
		if *showRows {
			printRows(e)
		}
	}
	if lazy != nil {
		d, err := lazy.Flush()
		if err != nil {
			return err
		}
		fmt.Printf("\nflushed deferred batch in %v\n", d)
	}
	if !*showRows {
		printRows(e)
	}
	if *saveDir != "" {
		if err := os.MkdirAll(*saveDir, 0o755); err != nil {
			return err
		}
		for _, mv := range e.Views {
			data := e.Store.EncodeView(mv.View)
			path := filepath.Join(*saveDir, mv.Name+".xivm")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				return err
			}
			fmt.Printf("saved %s (%d bytes)\n", path, len(data))
		}
	}
	if *metricsOut != "" {
		if *metricsOut == "json" || *metricsOut == "-" {
			fmt.Println()
			return e.Metrics().WriteJSON(os.Stdout)
		}
		var b strings.Builder
		if err := e.Metrics().WriteJSON(&b); err != nil {
			return err
		}
		return os.WriteFile(*metricsOut, []byte(b.String()), 0o644)
	}
	return nil
}

func printRows(e *core.Engine) {
	for _, mv := range e.Views {
		fmt.Printf("\nview %s: %d rows\n", mv.Name, mv.View.Len())
		for _, r := range mv.View.Rows() {
			fmt.Printf("  count=%d", r.Count)
			for _, en := range r.Entries {
				fmt.Printf("  %s=%v", mv.Pattern.Nodes[en.NodeIdx].Label, en.ID)
				if en.Val != "" {
					fmt.Printf(" val=%q", en.Val)
				}
				if en.Cont != "" {
					c := en.Cont
					if len(c) > 40 {
						c = c[:40] + "…"
					}
					fmt.Printf(" cont=%q", c)
				}
			}
			fmt.Println()
		}
	}
}
