// Command xivm maintains materialized views over an XML document while
// applying update statements.
//
// Usage:
//
//	xivm -doc auction.xml \
//	     -view 'Q1=for $b in doc("a")/site/people/person[@id] return $b/name/text()' \
//	     -pattern 'V2=//a{ID}[//c{ID}]//b{ID}' \
//	     [-policy snowcaps|leaves|cost] [-engine incr|lazy|full|ivma] [-rows] [-stats] \
//	     'insert <x/> into /site' 'delete //person[phone]' …
//
// Views are declared either in the paper's conjunctive XQuery dialect
// (-view) or directly as tree patterns (-pattern). Each trailing argument
// is one update statement, applied in order; after each statement the tool
// reports per-phase timings and row deltas, and -rows dumps view contents.
//
// With -data-dir the tool runs durably: statements are journaled to a
// write-ahead log before they touch any view, checkpoints capture the
// document plus every view, and restarting against the same directory
// recovers the exact acknowledged state (-doc is then only needed on first
// use, to create the database). -verify-recovery opens the directory,
// prints what recovery did, and checks every recovered view row-for-row
// against a fresh evaluation:
//
//	xivm -data-dir ./data -doc auction.xml -pattern 'Q1=...' 'delete //x'
//	xivm -data-dir ./data -fsync interval -checkpoint-every 100 'insert …'
//	xivm -data-dir ./data -verify-recovery
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	_ "net/http/pprof" // -serve exposes /debug/pprof
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"xivm/internal/algebra"
	"xivm/internal/core"
	"xivm/internal/obs"
	"xivm/internal/pattern"
	"xivm/internal/server"
	"xivm/internal/store"
	"xivm/internal/update"
	"xivm/internal/view"
	"xivm/internal/wal"
	"xivm/internal/xmltree"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ";") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "xivm:", err)
		os.Exit(1)
	}
}

func run() error {
	var views, patterns multiFlag
	docPath := flag.String("doc", "", "XML document to load (required)")
	flag.Var(&views, "view", "NAME=view definition (repeatable)")
	flag.Var(&patterns, "pattern", "NAME=tree pattern (repeatable)")
	policy := flag.String("policy", "snowcaps", "lattice policy: snowcaps or leaves")
	engine := flag.String("engine", "incr", "maintenance engine: incr, lazy, full, or ivma")
	showRows := flag.Bool("rows", false, "print view rows after each statement")
	stats := flag.Bool("stats", false, "print per-phase timing breakdowns")
	saveDir := flag.String("save", "", "directory to write per-view binary snapshots after all statements")
	loadDir := flag.String("load", "", "directory to restore per-view snapshots from (instead of materializing)")
	metricsOut := flag.String("metrics", "", `dump engine metrics when done: "json" to stdout, or a file path`)
	serveAddr := flag.String("serve", "", "serve /debug/pprof and /debug/vars on this address (e.g. :6060)")
	dataDir := flag.String("data-dir", "", "durable mode: tenant root directory; each database journals to <data-dir>/<name>")
	dbName := flag.String("db", "default", "database (tenant) name: the -data-dir subdirectory batch statements apply to, and the bootstrap/statement target of -listen")
	fsync := flag.String("fsync", "always", "durable mode fsync policy: always, interval, or never")
	fsyncInterval := flag.Duration("fsync-interval", 50*time.Millisecond, "group-commit window under -fsync interval")
	checkpointEvery := flag.Int("checkpoint-every", 0, "durable mode: checkpoint automatically after this many journaled records (0 = never)")
	compactRecovery := flag.Bool("compact-recovery", false, "durable mode: compact the replay tail with the PUL reduction rules")
	verifyRecovery := flag.Bool("verify-recovery", false, "open -data-dir, report what recovery did, verify every view against a fresh evaluation, and exit")
	listenAddr := flag.String("listen", "", "serve the query/update HTTP API on this address (e.g. :8080) until interrupted")
	followURL := flag.String("follow", "", "follower mode: tail the leader at this base URL and serve reads at the applied LSN (requires -listen)")
	queueDepth := flag.Int("queue-depth", 64, "-listen mode: bounded apply-queue depth (full queue rejects with 429)")
	maxBatch := flag.Int("max-batch", 0, "-listen mode: cap on queued statements the writer translates into one propagation pass (0 = default 32, 1 = per-statement)")
	requestTimeout := flag.Duration("request-timeout", 10*time.Second, "-listen mode: per-request deadline for updates")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "-listen mode: graceful-drain budget on shutdown")
	flag.Parse()

	// SIGINT/SIGTERM trigger a graceful drain everywhere: statement loops
	// stop between statements (the WAL group-commit window still flushes
	// through the normal exit path), the -listen server finishes in-flight
	// requests, and the -serve debug listener drains before exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *serveAddr != "" {
		obs.PublishExpvar("xivm", obs.Default())
		shutdown, err := server.ServeDebug(*serveAddr)
		if err != nil {
			return err
		}
		defer shutdown()
		fmt.Printf("serving pprof/expvar on %s\n", *serveAddr)
	}

	if *followURL != "" {
		if *listenAddr == "" {
			return fmt.Errorf("-follow requires -listen (a follower exists to serve reads)")
		}
		if *dataDir != "" {
			return fmt.Errorf("-follow keeps no -data-dir: the leader owns the durable state")
		}
		if flag.NArg() > 0 {
			return fmt.Errorf("-follow accepts no statements: followers are read-only")
		}
		return runFollow(ctx, listenConfig{
			addr:           *listenAddr,
			requestTimeout: *requestTimeout,
			drainTimeout:   *drainTimeout,
		}, *followURL, *policy)
	}

	if *listenAddr != "" {
		return runListen(ctx, listenConfig{
			addr:           *listenAddr,
			queueDepth:     *queueDepth,
			maxBatch:       *maxBatch,
			requestTimeout: *requestTimeout,
			drainTimeout:   *drainTimeout,
		}, durableConfig{
			dir:             *dataDir,
			db:              *dbName,
			docPath:         *docPath,
			views:           views,
			patterns:        patterns,
			policy:          *policy,
			engine:          *engine,
			fsync:           *fsync,
			fsyncInterval:   *fsyncInterval,
			checkpointEvery: *checkpointEvery,
			compact:         *compactRecovery,
			statements:      flag.Args(),
		})
	}

	if *dataDir != "" {
		return runDurable(ctx, durableConfig{
			dir:             *dataDir,
			db:              *dbName,
			docPath:         *docPath,
			views:           views,
			patterns:        patterns,
			policy:          *policy,
			engine:          *engine,
			fsync:           *fsync,
			fsyncInterval:   *fsyncInterval,
			checkpointEvery: *checkpointEvery,
			compact:         *compactRecovery,
			verify:          *verifyRecovery,
			showRows:        *showRows,
			stats:           *stats,
			metricsOut:      *metricsOut,
			statements:      flag.Args(),
		})
	}
	if *verifyRecovery {
		return fmt.Errorf("-verify-recovery requires -data-dir")
	}

	if *docPath == "" {
		return fmt.Errorf("-doc is required")
	}
	f, err := os.Open(*docPath)
	if err != nil {
		return err
	}
	doc, err := xmltree.Parse(f)
	f.Close()
	if err != nil {
		return err
	}

	eopts, err := policyOptions(*policy)
	if err != nil {
		return err
	}
	e := core.New(doc, eopts...)

	addView := func(spec string, compile func(string) (*pattern.Pattern, error)) error {
		name, src, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("view spec %q must be NAME=DEFINITION", spec)
		}
		p, err := compile(src)
		if err != nil {
			return fmt.Errorf("view %s: %w", name, err)
		}
		var mv *core.ManagedView
		if *loadDir != "" {
			data, err := os.ReadFile(filepath.Join(*loadDir, name+".xivm"))
			if err != nil {
				return fmt.Errorf("load view %s: %w", name, err)
			}
			rows, err := store.DecodeSnapshot(data)
			if err != nil {
				return fmt.Errorf("load view %s: %w", name, err)
			}
			mv, err = e.AddViewRows(name, p, rows)
			if err != nil {
				return err
			}
			fmt.Printf("view %-8s %s  (%d rows, restored)\n", name, p, mv.View.Len())
			return nil
		}
		mv, err = e.AddView(name, p)
		if err != nil {
			return err
		}
		fmt.Printf("view %-8s %s  (%d rows)\n", name, p, mv.View.Len())
		return nil
	}
	for _, spec := range views {
		if err := addView(spec, func(src string) (*pattern.Pattern, error) {
			def, err := view.Compile(src)
			if err != nil {
				return nil, err
			}
			return def.Pattern, nil
		}); err != nil {
			return err
		}
	}
	for _, spec := range patterns {
		if err := addView(spec, pattern.Parse); err != nil {
			return err
		}
	}
	if len(e.Views) == 0 {
		return fmt.Errorf("no views declared (-view / -pattern)")
	}

	var lazy *core.Lazy
	if *engine == "lazy" {
		lazy = core.NewLazy(e)
	}
	for _, stmt := range flag.Args() {
		if ctx.Err() != nil {
			fmt.Println("\ninterrupted: remaining statements skipped")
			break
		}
		st, err := update.Parse(stmt)
		if err != nil {
			return err
		}
		fmt.Printf("\n>> %s\n", stmt)
		switch *engine {
		case "lazy":
			if err := lazy.Apply(st); err != nil {
				return err
			}
			fmt.Printf("deferred (%d pending)\n", lazy.Pending())
		case "incr":
			rep, err := e.ApplyStatement(st)
			if err != nil {
				return err
			}
			printReport(rep, *stats)
		case "full":
			d, err := e.FullRecompute(st)
			if err != nil {
				return err
			}
			fmt.Printf("full recomputation in %v\n", d)
		case "ivma":
			d, err := core.NewIVMA(e).ApplyStatement(st)
			if err != nil {
				return err
			}
			fmt.Printf("ivma propagation in %v\n", d)
		default:
			return fmt.Errorf("unknown engine %q", *engine)
		}
		if *showRows {
			printRows(e)
		}
	}
	if lazy != nil {
		d, err := lazy.Flush()
		if err != nil {
			return err
		}
		fmt.Printf("\nflushed deferred batch in %v\n", d)
	}
	if !*showRows {
		printRows(e)
	}
	if *saveDir != "" {
		if err := os.MkdirAll(*saveDir, 0o755); err != nil {
			return err
		}
		for _, mv := range e.Views {
			data := e.Store.EncodeView(mv.View)
			path := filepath.Join(*saveDir, mv.Name+".xivm")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				return err
			}
			fmt.Printf("saved %s (%d bytes)\n", path, len(data))
		}
	}
	if *metricsOut != "" {
		if *metricsOut == "json" || *metricsOut == "-" {
			fmt.Println()
			return e.Metrics().WriteJSON(os.Stdout)
		}
		var b strings.Builder
		if err := e.Metrics().WriteJSON(&b); err != nil {
			return err
		}
		return os.WriteFile(*metricsOut, []byte(b.String()), 0o644)
	}
	return nil
}

func policyOptions(policy string) ([]core.Option, error) {
	switch policy {
	case "snowcaps":
		return nil, nil
	case "leaves":
		return []core.Option{core.WithPolicy(core.PolicyLeaves)}, nil
	case "cost":
		return []core.Option{core.WithPolicy(core.PolicyCost)}, nil
	}
	return nil, fmt.Errorf("unknown policy %q", policy)
}

func printReport(rep *core.Report, stats bool) {
	fmt.Printf("targets=%d\n", rep.Targets)
	if stats {
		fmt.Printf("find=%v (once per statement)\n", rep.FindTargets)
	}
	for _, vr := range rep.Views {
		fmt.Printf("view %-8s +%d -%d ~%d rows  terms %d/%d",
			vr.View.Name, vr.RowsAdded, vr.RowsRemoved, vr.RowsModified,
			vr.TermsSurvived, vr.TermsTotal)
		if vr.PredFallback {
			fmt.Print("  [predicate flip: recomputed]")
		}
		fmt.Println()
		if stats {
			t := vr.Timings()
			fmt.Printf("  delta=%v expr=%v exec=%v lattice=%v\n",
				t.ComputeDelta, t.GetExpression, t.ExecuteUpdate, t.UpdateLattice)
		}
	}
}

type durableConfig struct {
	dir             string
	db              string
	docPath         string
	views           []string
	patterns        []string
	policy          string
	engine          string
	fsync           string
	fsyncInterval   time.Duration
	checkpointEvery int
	compact         bool
	verify          bool
	showRows        bool
	stats           bool
	metricsOut      string
	statements      []string
}

// resolveTenantDir maps -data-dir/-db to the database directory. -data-dir
// is a tenant root (<root>/<db> holds the database), but a directory that
// itself holds checkpoints is the pre-multi-tenant flat layout and is used
// directly so existing databases keep working.
func resolveTenantDir(root, db string) (string, error) {
	if err := wal.ValidTenantName(db); err != nil {
		return "", err
	}
	if ok, err := wal.IsDatabase(nil, root); err == nil && ok {
		return root, nil
	}
	return wal.TenantDir(root, db), nil
}

// runDurable is the -data-dir mode: every statement goes through the
// database's write-ahead log under <data-dir>/<db>, and the directory
// recovers to the acknowledged state on the next run. Cancelling ctx stops
// between statements; everything acknowledged so far is synced on the way
// out.
func runDurable(ctx context.Context, cfg durableConfig) error {
	if cfg.engine != "incr" {
		return fmt.Errorf("-data-dir supports only -engine incr (the log replays through the incremental engine)")
	}
	dir, err := resolveTenantDir(cfg.dir, cfg.db)
	if err != nil {
		return err
	}
	policy, err := wal.ParseSyncPolicy(cfg.fsync)
	if err != nil {
		return err
	}
	eopts, err := policyOptions(cfg.policy)
	if err != nil {
		return err
	}
	opts := wal.Options{
		Sync:            policy,
		SyncInterval:    cfg.fsyncInterval,
		CheckpointEvery: cfg.checkpointEvery,
		Compact:         cfg.compact,
		Engine:          eopts,
	}

	var db *wal.DB
	if cfg.docPath != "" {
		docXML, err := os.ReadFile(cfg.docPath)
		if err != nil {
			return err
		}
		db, err = wal.OpenOrCreate(dir, docXML, opts)
		if err != nil {
			return err
		}
	} else {
		db, err = wal.Open(dir, opts)
		if err != nil {
			return fmt.Errorf("%w (pass -doc to create a new database)", err)
		}
	}
	defer db.Close()
	printRecovery(db)

	if cfg.verify {
		return verifyViews(db)
	}

	addView := func(name, src string, compile func(string) (*pattern.Pattern, error)) error {
		if db.HasView(name) {
			fmt.Printf("view %-8s (recovered)\n", name)
			return nil
		}
		p, err := compile(src)
		if err != nil {
			return fmt.Errorf("view %s: %w", name, err)
		}
		// The log stores the pattern rendering, which reparses to an equal
		// pattern regardless of which dialect declared it.
		mv, err := db.AddView(name, p.String())
		if err != nil {
			return err
		}
		fmt.Printf("view %-8s %s  (%d rows)\n", name, p, mv.View.Len())
		return nil
	}
	for _, spec := range cfg.views {
		name, src, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("view spec %q must be NAME=DEFINITION", spec)
		}
		if err := addView(name, src, func(src string) (*pattern.Pattern, error) {
			def, err := view.Compile(src)
			if err != nil {
				return nil, err
			}
			return def.Pattern, nil
		}); err != nil {
			return err
		}
	}
	for _, spec := range cfg.patterns {
		name, src, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("pattern spec %q must be NAME=PATTERN", spec)
		}
		if err := addView(name, src, pattern.Parse); err != nil {
			return err
		}
	}
	if len(db.Engine().Views) == 0 {
		return fmt.Errorf("no views declared (-view / -pattern) and none recovered")
	}

	for _, stmt := range cfg.statements {
		if ctx.Err() != nil {
			fmt.Println("\ninterrupted: remaining statements skipped")
			break
		}
		st, err := update.Parse(stmt)
		if err != nil {
			return err
		}
		fmt.Printf("\n>> %s\n", stmt)
		rep, err := db.ApplyCtx(ctx, st)
		if errors.Is(err, context.Canceled) {
			fmt.Println("interrupted: statement aborted, views repaired")
			break
		}
		if err != nil {
			return err
		}
		printReport(rep, cfg.stats)
		if cfg.showRows {
			printRows(db.Engine())
		}
	}
	if err := db.Sync(); err != nil {
		return err
	}
	if !cfg.showRows {
		printRows(db.Engine())
	}
	fmt.Printf("\ndurable through lsn %d in %s\n", db.LastLSN(), db.Dir())
	if cfg.metricsOut != "" {
		if cfg.metricsOut == "json" || cfg.metricsOut == "-" {
			fmt.Println()
			return obs.Default().WriteJSON(os.Stdout)
		}
		var b strings.Builder
		if err := obs.Default().WriteJSON(&b); err != nil {
			return err
		}
		return os.WriteFile(cfg.metricsOut, []byte(b.String()), 0o644)
	}
	return nil
}

func printRecovery(db *wal.DB) {
	st := db.Stats()
	fmt.Printf("recovered: checkpoint lsn=%d replayed=%d skipped=%d\n",
		st.CheckpointLSN, st.Replayed, st.Skipped)
	if st.TruncatedBytes > 0 {
		fmt.Printf("  torn tail: %d bytes truncated\n", st.TruncatedBytes)
	}
	if st.BadCheckpoints > 0 {
		fmt.Printf("  %d corrupt checkpoint(s) skipped\n", st.BadCheckpoints)
	}
	if st.Compacted {
		fmt.Printf("  replay compacted: %d operations eliminated\n", st.CompactedOps)
	}
}

// verifyViews is the recover-and-verify mode: every recovered view must be
// row-for-row identical to a fresh evaluation of its pattern over the
// recovered document.
func verifyViews(db *wal.DB) error {
	e := db.Engine()
	bad := 0
	for _, mv := range e.Views {
		want := algebra.Materialize(e.Doc, mv.Pattern)
		if mv.View.EqualRows(want) {
			fmt.Printf("view %-8s %s  ok (%d rows)\n", mv.Name, mv.Pattern, len(want))
		} else {
			fmt.Printf("view %-8s %s  DIVERGED (%d rows maintained, %d fresh)\n",
				mv.Name, mv.Pattern, mv.View.Len(), len(want))
			bad++
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d view(s) diverged from fresh evaluation", bad)
	}
	fmt.Printf("all %d view(s) verified against fresh evaluation\n", len(e.Views))
	return nil
}

func printRows(e *core.Engine) {
	for _, mv := range e.Views {
		fmt.Printf("\nview %s: %d rows\n", mv.Name, mv.View.Len())
		for _, r := range mv.View.Rows() {
			fmt.Printf("  count=%d", r.Count)
			for _, en := range r.Entries {
				fmt.Printf("  %s=%v", mv.Pattern.Nodes[en.NodeIdx].Label, en.ID)
				if en.Val != "" {
					fmt.Printf(" val=%q", en.Val)
				}
				if en.Cont != "" {
					c := en.Cont
					if len(c) > 40 {
						c = c[:40] + "…"
					}
					fmt.Printf(" cont=%q", c)
				}
			}
			fmt.Println()
		}
	}
}
