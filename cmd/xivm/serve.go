package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"xivm/internal/client"
	"xivm/internal/pattern"
	"xivm/internal/repl"
	"xivm/internal/server"
	"xivm/internal/update"
	"xivm/internal/view"
	"xivm/internal/wal"
)

type listenConfig struct {
	addr           string
	queueDepth     int
	maxBatch       int
	requestTimeout time.Duration
	drainTimeout   time.Duration
}

// runListen is the -listen mode: it builds a tenant registry (durable when
// -data-dir is set — the directory is a tenant root holding one WAL
// directory per database — in-memory otherwise), recovers every surviving
// tenant, bootstraps the -db tenant from -doc when missing, applies any
// trailing statements to it, then serves the multi-tenant HTTP API until
// ctx is cancelled by a signal. Shutdown is a graceful drain: the listener
// finishes in-flight HTTP requests, every tenant's apply loop drains every
// accepted update, and every backend syncs (flushing its WAL group-commit
// window) before exit.
func runListen(ctx context.Context, lc listenConfig, cfg durableConfig) error {
	if cfg.engine != "incr" {
		return fmt.Errorf("-listen supports only -engine incr")
	}
	if err := wal.ValidTenantName(cfg.db); err != nil {
		return err
	}
	specs, err := compileViewSpecs(cfg.views, cfg.patterns)
	if err != nil {
		return err
	}
	defaultViews := make([]server.ViewSpec, 0, len(specs))
	for _, s := range specs {
		defaultViews = append(defaultViews, server.ViewSpec{Name: s.name, Pattern: s.p.String()})
	}
	var defaultDoc string
	if cfg.docPath != "" {
		docXML, err := os.ReadFile(cfg.docPath)
		if err != nil {
			return err
		}
		defaultDoc = string(docXML)
	}
	eopts, err := policyOptions(cfg.policy)
	if err != nil {
		return err
	}

	regCfg := server.RegistryConfig{
		Shard: server.Config{
			QueueDepth:     lc.queueDepth,
			MaxBatch:       lc.maxBatch,
			RequestTimeout: lc.requestTimeout,
		},
		DefaultDoc:   defaultDoc,
		DefaultViews: defaultViews,
		WAL:          wal.Options{Engine: eopts},
	}
	if cfg.dir != "" {
		policy, err := wal.ParseSyncPolicy(cfg.fsync)
		if err != nil {
			return err
		}
		regCfg.DataDir = cfg.dir
		regCfg.WAL = wal.Options{
			Sync:            policy,
			SyncInterval:    cfg.fsyncInterval,
			CheckpointEvery: cfg.checkpointEvery,
			Compact:         cfg.compact,
			Engine:          eopts,
		}
	} else if defaultDoc == "" {
		return fmt.Errorf("-doc is required (or -data-dir to reopen durable databases)")
	}

	reg, err := server.NewRegistry(regCfg)
	if err != nil {
		return err
	}
	shutdownReg := func(dctx context.Context) {
		if err := reg.Shutdown(dctx); err != nil {
			fmt.Fprintln(os.Stderr, "xivm: registry drain:", err)
		}
	}
	for _, st := range reg.Stats() {
		fmt.Printf("db %-12s (recovered: epoch %d, %d views, %d rows)\n", st.Name, st.Version, st.Views, st.Rows)
	}

	// Bootstrap the -db tenant (the one trailing statements and the
	// deprecated single-tenant aliases address) when it does not exist yet.
	if _, err := reg.Get(cfg.db); err != nil {
		if defaultDoc == "" {
			if len(reg.Names()) == 0 {
				shutdownReg(ctx)
				return fmt.Errorf("no databases recovered from %s (pass -doc to create %q)", cfg.dir, cfg.db)
			}
		} else {
			sh, err := reg.Create(cfg.db, "", nil)
			if err != nil {
				shutdownReg(ctx)
				return err
			}
			snap := sh.Epoch()
			fmt.Printf("db %-12s (created: %d views)\n", cfg.db, len(snap.Views))
		}
	}

	for _, stmt := range cfg.statements {
		st, err := update.Parse(stmt)
		if err != nil {
			shutdownReg(ctx)
			return err
		}
		sh, err := reg.Get(cfg.db)
		if err != nil {
			shutdownReg(ctx)
			return err
		}
		if _, version, err := sh.Apply(ctx, st); err != nil {
			shutdownReg(ctx)
			return fmt.Errorf("apply %q: %w", stmt, err)
		} else {
			fmt.Printf(">> [%s] %s  (version %d)\n", cfg.db, stmt, version)
		}
	}

	ln, err := net.Listen("tcp", lc.addr)
	if err != nil {
		shutdownReg(ctx)
		return err
	}
	hs := &http.Server{Handler: reg.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Printf("serving multi-tenant API on %s (%d databases)\n", ln.Addr(), len(reg.Names()))

	select {
	case err := <-serveErr:
		shutdownReg(ctx)
		return err
	case <-ctx.Done():
	}
	fmt.Println("\nshutting down: draining requests and apply queues…")
	dctx, cancel := context.WithTimeout(context.Background(), lc.drainTimeout)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "xivm: http drain:", err)
	}
	shutdownReg(dctx)
	for _, st := range reg.Stats() {
		fmt.Printf("db %-12s drained at epoch %d\n", st.Name, st.Version)
	}
	return nil
}

// runFollow is the -follow mode: a read-only follower. It builds a follower
// registry (no data dir — the leader owns the durable state), starts a
// replication fleet that discovers the leader's tenants and tails each one
// (snapshot-first catch-up, then WAL-frame streaming with CRC
// re-verification), and serves every read endpoint at the applied LSN.
// Writes are rejected with 403 read_only pointing at the leader. Shutdown
// stops the HTTP listener, then the tailers.
func runFollow(ctx context.Context, lc listenConfig, leaderURL, policy string) error {
	eopts, err := policyOptions(policy)
	if err != nil {
		return err
	}
	reg, err := server.NewRegistry(server.RegistryConfig{
		Shard:      server.Config{RequestTimeout: lc.requestTimeout},
		FollowerOf: leaderURL,
		WAL:        wal.Options{Engine: eopts},
	})
	if err != nil {
		return err
	}

	fctx, fcancel := context.WithCancel(context.Background())
	fleet := repl.NewFleet(client.New(leaderURL), reg, repl.Options{Engine: eopts})
	fleetDone := make(chan struct{})
	go func() {
		defer close(fleetDone)
		_ = fleet.Run(fctx)
	}()

	ln, err := net.Listen("tcp", lc.addr)
	if err != nil {
		fcancel()
		<-fleetDone
		return err
	}
	hs := &http.Server{Handler: reg.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Printf("serving read-only follower API on %s (leader %s)\n", ln.Addr(), leaderURL)

	var srvErr error
	select {
	case srvErr = <-serveErr:
	case <-ctx.Done():
	}
	fmt.Println("\nshutting down: draining requests and stopping tailers…")
	dctx, cancel := context.WithTimeout(context.Background(), lc.drainTimeout)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "xivm: http drain:", err)
	}
	fcancel()
	<-fleetDone
	if err := reg.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "xivm: registry drain:", err)
	}
	for _, st := range reg.Stats() {
		fmt.Printf("db %-12s stopped at applied lsn %d (epoch %d)\n", st.Name, st.AppliedLSN, st.Version)
	}
	return srvErr
}

type namedPattern struct {
	name string
	p    *pattern.Pattern
}

// compileViewSpecs resolves -view (conjunctive XQuery dialect) and
// -pattern (tree pattern) declarations to named patterns.
func compileViewSpecs(views, patterns []string) ([]namedPattern, error) {
	var out []namedPattern
	add := func(spec string, compile func(string) (*pattern.Pattern, error)) error {
		name, src, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("view spec %q must be NAME=DEFINITION", spec)
		}
		p, err := compile(src)
		if err != nil {
			return fmt.Errorf("view %s: %w", name, err)
		}
		out = append(out, namedPattern{name: name, p: p})
		return nil
	}
	for _, spec := range views {
		if err := add(spec, func(src string) (*pattern.Pattern, error) {
			def, err := view.Compile(src)
			if err != nil {
				return nil, err
			}
			return def.Pattern, nil
		}); err != nil {
			return nil, err
		}
	}
	for _, spec := range patterns {
		if err := add(spec, pattern.Parse); err != nil {
			return nil, err
		}
	}
	return out, nil
}
