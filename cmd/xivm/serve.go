package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"xivm/internal/core"
	"xivm/internal/pattern"
	"xivm/internal/server"
	"xivm/internal/update"
	"xivm/internal/view"
	"xivm/internal/wal"
	"xivm/internal/xmltree"
)

type listenConfig struct {
	addr           string
	queueDepth     int
	requestTimeout time.Duration
	drainTimeout   time.Duration
}

// runListen is the -listen mode: it builds a backend (WAL-durable when
// -data-dir is set, in-memory otherwise), applies any trailing statements,
// then serves the query/update HTTP API until ctx is cancelled by a
// signal. Shutdown is a graceful drain: the listener finishes in-flight
// HTTP requests, the apply loop drains every accepted update, and the
// backend syncs (flushing the WAL group-commit window) before exit.
func runListen(ctx context.Context, lc listenConfig, cfg durableConfig) error {
	if cfg.engine != "incr" {
		return fmt.Errorf("-listen supports only -engine incr")
	}
	specs, err := compileViewSpecs(cfg.views, cfg.patterns)
	if err != nil {
		return err
	}

	var backend server.Backend
	closeBackend := func() error { return nil }
	if cfg.dir != "" {
		policy, err := wal.ParseSyncPolicy(cfg.fsync)
		if err != nil {
			return err
		}
		eopts, err := policyOptions(cfg.policy)
		if err != nil {
			return err
		}
		opts := wal.Options{
			Sync:            policy,
			SyncInterval:    cfg.fsyncInterval,
			CheckpointEvery: cfg.checkpointEvery,
			Compact:         cfg.compact,
			Engine:          eopts,
		}
		var db *wal.DB
		if cfg.docPath != "" {
			docXML, err := os.ReadFile(cfg.docPath)
			if err != nil {
				return err
			}
			db, err = wal.OpenOrCreate(cfg.dir, docXML, opts)
			if err != nil {
				return err
			}
		} else {
			db, err = wal.Open(cfg.dir, opts)
			if err != nil {
				return fmt.Errorf("%w (pass -doc to create a new database)", err)
			}
		}
		printRecovery(db)
		for _, s := range specs {
			if db.HasView(s.name) {
				fmt.Printf("view %-8s (recovered)\n", s.name)
				continue
			}
			mv, err := db.AddView(s.name, s.p.String())
			if err != nil {
				db.Close()
				return err
			}
			fmt.Printf("view %-8s %s  (%d rows)\n", s.name, s.p, mv.View.Len())
		}
		if len(db.Engine().Views) == 0 {
			db.Close()
			return fmt.Errorf("no views declared (-view / -pattern) and none recovered")
		}
		backend, closeBackend = db, db.Close
	} else {
		if cfg.docPath == "" {
			return fmt.Errorf("-doc is required (or -data-dir to reopen a durable database)")
		}
		f, err := os.Open(cfg.docPath)
		if err != nil {
			return err
		}
		doc, err := xmltree.Parse(f)
		f.Close()
		if err != nil {
			return err
		}
		eopts, err := policyOptions(cfg.policy)
		if err != nil {
			return err
		}
		e := core.New(doc, eopts...)
		for _, s := range specs {
			mv, err := e.AddView(s.name, s.p)
			if err != nil {
				return err
			}
			fmt.Printf("view %-8s %s  (%d rows)\n", s.name, s.p, mv.View.Len())
		}
		if len(e.Views) == 0 {
			return fmt.Errorf("no views declared (-view / -pattern)")
		}
		backend = server.EngineBackend{Eng: e}
	}

	srv := server.New(backend, server.Config{
		QueueDepth:     lc.queueDepth,
		RequestTimeout: lc.requestTimeout,
	})
	for _, stmt := range cfg.statements {
		st, err := update.Parse(stmt)
		if err != nil {
			return err
		}
		if _, version, err := srv.Apply(ctx, st); err != nil {
			return fmt.Errorf("apply %q: %w", stmt, err)
		} else {
			fmt.Printf(">> %s  (version %d)\n", stmt, version)
		}
	}

	ln, err := net.Listen("tcp", lc.addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Printf("serving query/update API on %s (version %d, %d views)\n",
		ln.Addr(), srv.Epoch().Version, len(srv.Epoch().Views))

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Println("\nshutting down: draining requests and apply queue…")
	dctx, cancel := context.WithTimeout(context.Background(), lc.drainTimeout)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "xivm: http drain:", err)
	}
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "xivm: apply-queue drain:", err)
	}
	if err := closeBackend(); err != nil {
		return err
	}
	fmt.Printf("drained at version %d\n", srv.Epoch().Version)
	return nil
}

type namedPattern struct {
	name string
	p    *pattern.Pattern
}

// compileViewSpecs resolves -view (conjunctive XQuery dialect) and
// -pattern (tree pattern) declarations to named patterns.
func compileViewSpecs(views, patterns []string) ([]namedPattern, error) {
	var out []namedPattern
	add := func(spec string, compile func(string) (*pattern.Pattern, error)) error {
		name, src, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("view spec %q must be NAME=DEFINITION", spec)
		}
		p, err := compile(src)
		if err != nil {
			return fmt.Errorf("view %s: %w", name, err)
		}
		out = append(out, namedPattern{name: name, p: p})
		return nil
	}
	for _, spec := range views {
		if err := add(spec, func(src string) (*pattern.Pattern, error) {
			def, err := view.Compile(src)
			if err != nil {
				return nil, err
			}
			return def.Pattern, nil
		}); err != nil {
			return nil, err
		}
	}
	for _, spec := range patterns {
		if err := add(spec, pattern.Parse); err != nil {
			return nil, err
		}
	}
	return out, nil
}
