// Command xivmbench regenerates the paper's experimental figures: each
// subcommand reproduces one figure of Section 6 and prints the same
// rows/series the paper plots.
//
// Usage:
//
//	xivmbench [-size BYTES] [-small BYTES] [-json FILE] fig18 [fig19 …] | all
//
// Subcommands: fig18 fig19 fig20 fig21 fig22 fig23 fig24 fig25 fig26 fig27
// fig28 fig29 fig30 fig31 fig32 fig33 fig34 fig35 ablation all.
//
// -json runs the hot-path micro suite (structural join, duplicate
// elimination, word-relation access, end-to-end propagation) and writes a
// machine-readable report; -query-json does the same for the query suite
// (compiled vs interpreted XPath per shape) and -rewrite-json for the
// view-rewrite suite (view rewrite vs tree walk per plan shape).
// EXPERIMENTS.md describes how perf PRs combine such runs into a committed
// BENCH_<pr>.json.
package main

import (
	"flag"
	"fmt"
	_ "net/http/pprof" // -serve exposes /debug/pprof
	"os"

	"xivm/internal/bench"
	"xivm/internal/obs"
	"xivm/internal/server"
)

func main() {
	size := flag.Int("size", bench.DefaultBytes, "large-document size in bytes (the paper's 10MB class)")
	small := flag.Int("small", bench.SmallBytes, "small-document size in bytes (the paper's 100KB class)")
	metrics := flag.String("metrics", "", `dump the whole run's engine metrics when done: "json" for stdout, or a file path`)
	jsonOut := flag.String("json", "", `run the hot-path micro suite and write its machine-readable report (BENCH_*.json input): "-" for stdout, or a file path`)
	queryJSONOut := flag.String("query-json", "", `run the query micro suite (compiled vs interpreted XPath per shape at -small) and write its machine-readable report: "-" for stdout, or a file path`)
	rewriteJSONOut := flag.String("rewrite-json", "", `run the rewrite micro suite (view rewrite vs tree walk per plan shape at -small) and write its machine-readable report: "-" for stdout, or a file path`)
	batchJSONOut := flag.String("batch-json", "", `run the shard burst suite (batched vs per-statement serving throughput at -size and 4x -size) and write its machine-readable report: "-" for stdout, or a file path`)
	serveAddr := flag.String("serve", "", "serve /debug/pprof and /debug/vars on this address while benchmarks run (e.g. :6060)")
	flag.Parse()

	if *jsonOut != "" {
		out := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "xivmbench:", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := bench.WriteMicroJSON(out, *small); err != nil {
			fmt.Fprintln(os.Stderr, "xivmbench:", err)
			os.Exit(1)
		}
		if len(flag.Args()) == 0 && *batchJSONOut == "" && *queryJSONOut == "" && *rewriteJSONOut == "" {
			return
		}
	}

	if *queryJSONOut != "" {
		out := os.Stdout
		if *queryJSONOut != "-" {
			f, err := os.Create(*queryJSONOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "xivmbench:", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := bench.WriteQueryJSON(out, *small); err != nil {
			fmt.Fprintln(os.Stderr, "xivmbench:", err)
			os.Exit(1)
		}
		if len(flag.Args()) == 0 && *batchJSONOut == "" && *rewriteJSONOut == "" {
			return
		}
	}

	if *rewriteJSONOut != "" {
		out := os.Stdout
		if *rewriteJSONOut != "-" {
			f, err := os.Create(*rewriteJSONOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "xivmbench:", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := bench.WriteRewriteJSON(out, *small); err != nil {
			fmt.Fprintln(os.Stderr, "xivmbench:", err)
			os.Exit(1)
		}
		if len(flag.Args()) == 0 && *batchJSONOut == "" {
			return
		}
	}

	if *batchJSONOut != "" {
		out := os.Stdout
		if *batchJSONOut != "-" {
			f, err := os.Create(*batchJSONOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "xivmbench:", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := bench.WriteBatchJSON(out, []int{*size, *size * 4}); err != nil {
			fmt.Fprintln(os.Stderr, "xivmbench:", err)
			os.Exit(1)
		}
		if len(flag.Args()) == 0 {
			return
		}
	}

	if *serveAddr != "" {
		obs.PublishExpvar("xivm", obs.Default())
		shutdown, err := server.ServeDebug(*serveAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xivmbench:", err)
			os.Exit(1)
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "serving pprof/expvar on %s\n", *serveAddr)
	}

	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: xivmbench [-size N] [-small N] [-json FILE] fig18 … fig35 | ablation | all")
		os.Exit(2)
	}
	percents := []int{20, 40, 60, 80, 100}
	series := []int{*size / 4, *size / 2, *size, *size * 2}
	w := os.Stdout

	var run func(name string)
	run = func(name string) {
		switch name {
		case "fig18":
			for _, vn := range []string{"Q1", "Q3", "Q6"} {
				bench.PrintBreakdown(w, "Figure 18: insert breakdown, view "+vn, bench.RunBreakdown(vn, true, *size))
			}
		case "fig19":
			for _, vn := range []string{"Q1", "Q3", "Q6"} {
				bench.PrintBreakdown(w, "Figure 19: delete breakdown, view "+vn, bench.RunBreakdown(vn, false, *size))
			}
		case "fig20":
			bench.PrintPairs(w, "Figure 20: insert performance, all views", bench.RunAllPairs(true, *size))
		case "fig21":
			bench.PrintPairs(w, "Figure 21: delete performance, all views", bench.RunAllPairs(false, *size))
		case "fig22":
			bench.PrintDepth(w, "Figure 22: X1_L delete at varying depth vs Q1 (small doc)", bench.RunPathDepth(*small))
		case "fig23":
			bench.PrintDepth(w, "Figure 23: X1_L delete at varying depth vs Q1 (large doc)", bench.RunPathDepth(*size))
		case "fig24":
			bench.PrintAnnotations(w, "Figure 24: X1_L vs Q1 annotation variants", bench.RunAnnotations(*small))
		case "fig25":
			bench.PrintScale(w, "Figure 25a: scalability of view insert (Q1, A6_A)", bench.RunScalability(series, true))
			bench.PrintScale(w, "Figure 25b: scalability of view delete (Q1, A6_A)", bench.RunScalability(series, false))
		case "fig26":
			bench.PrintVsFull(w, "Figure 26: PINT/PIMT vs full recomputation", bench.RunVsFull(true, *size))
		case "fig27":
			bench.PrintVsFull(w, "Figure 27: PDDT/PDMT vs full recomputation", bench.RunVsFull(false, *size))
		case "fig28":
			bench.PrintVsIVMA(w, "Figure 28: PINT/PIMT vs IVMA (Q1, small doc)", bench.RunVsIVMA(*small))
		case "fig29":
			bench.PrintSnowcaps(w, "Figure 29: snowcaps vs leaves, Q4", bench.RunSnowcapsVsLeaves("Q4", series))
		case "fig30":
			bench.PrintSnowcaps(w, "Figure 30: snowcaps vs leaves, Q6", bench.RunSnowcapsVsLeaves("Q6", series))
		case "fig31":
			bench.PrintSnowcapSplit(w, "Figure 31: evaluate/update split, Q4", bench.RunSnowcapSplit("Q4", series))
		case "fig32":
			bench.PrintSnowcapSplit(w, "Figure 32: evaluate/update split, Q6", bench.RunSnowcapSplit("Q6", series))
		case "fig33":
			bench.PrintRule(w, "Figure 33: reduction rule O1", bench.RunRule("O1", percents, *small))
		case "fig34":
			bench.PrintRule(w, "Figure 34: reduction rule O3", bench.RunRule("O3", percents, *small))
		case "fig35":
			bench.PrintRule(w, "Figure 35: reduction rule I5", bench.RunRule("I5", percents, *small))
		case "ablation":
			bench.PrintPruningAblation(w, bench.RunPruningAblation(*small))
			bench.PrintJoinAblation(w, bench.RunJoinAblation(*small))
			bench.PrintLazyAblation(w, bench.RunLazyAblation(*small))
			bench.PrintHolisticAblation(w, bench.RunHolisticAblation(*small))
		case "all":
			for _, f := range []string{"fig18", "fig19", "fig20", "fig21", "fig22", "fig23", "fig24",
				"fig25", "fig26", "fig27", "fig28", "fig29", "fig30", "fig31", "fig32",
				"fig33", "fig34", "fig35", "ablation"} {
				run(f)
			}
		default:
			fmt.Fprintf(os.Stderr, "xivmbench: unknown experiment %q\n", name)
			os.Exit(2)
		}
	}
	for _, a := range args {
		run(a)
	}
	if *metrics != "" {
		// Every engine the benchmarks construct records into the shared
		// obs.Default() registry, so this is a whole-run profile.
		if *metrics == "json" || *metrics == "-" {
			if err := obs.Default().WriteJSON(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "xivmbench:", err)
				os.Exit(1)
			}
			return
		}
		f, err := os.Create(*metrics)
		if err == nil {
			err = obs.Default().WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "xivmbench:", err)
			os.Exit(1)
		}
	}
}
