// Command xivmload generates load against a running xivm serving API
// (xivm -listen) and reports throughput, latency, and error mix — the
// measurement companion to the serving layer the way xivmbench is to the
// maintenance engine.
//
// Usage:
//
//	xivmload -addr http://localhost:8080 [-readers 8] [-writers 2] [-duration 10s]
//	xivmload -selfserve [-scale 1] …
//
// Readers alternate view queries (discovered via /v1/views) and XPath
// queries; writers cycle update statements (-stmt, or a built-in XMark mix)
// through POST /v1/update, counting 429 backpressure rejections separately
// from hard failures. -selfserve starts an in-process server over a
// generated XMark document on an ephemeral localhost port first — the CI
// smoke mode, exercising the full HTTP stack with no external setup.
//
// The exit status is non-zero if any hard error occurred (connection
// failures, 5xx, malformed responses), so a smoke run doubles as a check.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"xivm/internal/core"
	"xivm/internal/obs"
	"xivm/internal/server"
	"xivm/internal/update"
	"xivm/internal/xmark"
	"xivm/internal/xmltree"
)

type stmtFlag []string

func (m *stmtFlag) String() string     { return strings.Join(*m, "; ") }
func (m *stmtFlag) Set(s string) error { *m = append(*m, s); return nil }

// defaultStatements is a balanced XMark update mix: inserts and deletes
// roughly cancel so a long run does not grow the document unboundedly.
var defaultStatements = []string{
	`insert <person id="pload"><name>Load Person</name><phone>+1 555 0101</phone></person> into /site/people`,
	`for $x in /site/open_auctions/open_auction insert <bidder><date>03/03/2021</date><increase>3.00</increase></bidder>`,
	`delete /site/people/person/phone`,
	`delete /site/open_auctions/open_auction/bidder`,
}

var defaultQueries = []string{
	`/site/people/person/name`,
	`/site/open_auctions/open_auction/bidder/increase`,
}

// opStats aggregates one operation class with lock-free hot-path updates.
type opStats struct {
	count    atomic.Int64
	rejected atomic.Int64 // 429 backpressure (writers only)
	errors   atomic.Int64
	totalNS  atomic.Int64
	maxNS    atomic.Int64
}

func (s *opStats) observe(d time.Duration) {
	ns := d.Nanoseconds()
	s.count.Add(1)
	s.totalNS.Add(ns)
	for {
		cur := s.maxNS.Load()
		if ns <= cur || s.maxNS.CompareAndSwap(cur, ns) {
			break
		}
	}
}

func (s *opStats) report(w *strings.Builder, name string, elapsed time.Duration) {
	n := s.count.Load()
	var mean time.Duration
	if n > 0 {
		mean = time.Duration(s.totalNS.Load() / n)
	}
	fmt.Fprintf(w, "%-8s %8d ok  %8.1f/s  mean %-10v max %-10v",
		name, n, float64(n)/elapsed.Seconds(), mean, time.Duration(s.maxNS.Load()))
	if r := s.rejected.Load(); r > 0 {
		fmt.Fprintf(w, "  %d rejected (429)", r)
	}
	if e := s.errors.Load(); e > 0 {
		fmt.Fprintf(w, "  %d ERRORS", e)
	}
	w.WriteByte('\n')
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "xivmload:", err)
		os.Exit(1)
	}
}

func run() error {
	var stmts stmtFlag
	var queries stmtFlag
	addr := flag.String("addr", "", "base URL of a running xivm -listen server (e.g. http://localhost:8080)")
	selfserve := flag.Bool("selfserve", false, "start an in-process server over a generated XMark document instead of targeting -addr")
	scale := flag.Uint64("scale", 1, "-selfserve: XMark small-document scale factor")
	readers := flag.Int("readers", 8, "concurrent reader goroutines")
	writers := flag.Int("writers", 2, "concurrent writer goroutines")
	duration := flag.Duration("duration", 5*time.Second, "load duration")
	flag.Var(&stmts, "stmt", "update statement for writers (repeatable; default: built-in XMark mix)")
	flag.Var(&queries, "xpath", "XPath query for readers (repeatable; default: built-in XMark queries)")
	flag.Parse()
	if len(stmts) == 0 {
		stmts = defaultStatements
	}
	if len(queries) == 0 {
		queries = defaultQueries
	}
	for _, s := range stmts {
		if _, err := update.Parse(s); err != nil {
			return fmt.Errorf("-stmt %q: %w", s, err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	base := *addr
	if *selfserve {
		doc, err := xmltree.ParseString(xmark.GenerateSmall(*scale))
		if err != nil {
			return err
		}
		eng := core.New(doc, core.WithMetrics(obs.New()))
		for _, name := range []string{"Q1", "Q2"} {
			if _, err := eng.AddView(name, xmark.View(name)); err != nil {
				return err
			}
		}
		srv := server.New(server.EngineBackend{Eng: eng}, server.Config{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go func() { _ = hs.Serve(ln) }()
		defer func() {
			dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = hs.Shutdown(dctx)
			_ = srv.Shutdown(dctx)
		}()
		base = "http://" + ln.Addr().String()
		fmt.Printf("self-serving on %s\n", base)
	}
	if base == "" {
		return fmt.Errorf("-addr or -selfserve required")
	}
	base = strings.TrimRight(base, "/")

	client := &http.Client{Timeout: 30 * time.Second}
	views, err := discoverViews(client, base)
	if err != nil {
		return err
	}
	fmt.Printf("targeting %s: views %s, %d readers, %d writers, %v\n",
		base, strings.Join(views, " "), *readers, *writers, *duration)

	var readStats, xpathStats, writeStats opStats
	runCtx, cancel := context.WithTimeout(ctx, *duration)
	defer cancel()

	var wg sync.WaitGroup
	for r := 0; r < *readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := r; runCtx.Err() == nil; i++ {
				if i%2 == 0 && len(views) > 0 {
					readView(client, base, views[i%len(views)], &readStats)
				} else {
					readXPath(client, base, queries[i%len(queries)], &xpathStats)
				}
			}
		}(r)
	}
	for w := 0; w < *writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; runCtx.Err() == nil; i++ {
				writeUpdate(client, base, stmts[i%len(stmts)], &writeStats)
			}
		}(w)
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)

	var b strings.Builder
	fmt.Fprintf(&b, "\n%v elapsed\n", elapsed.Round(time.Millisecond))
	readStats.report(&b, "views", elapsed)
	xpathStats.report(&b, "xpath", elapsed)
	writeStats.report(&b, "updates", elapsed)
	fmt.Print(b.String())

	if n := readStats.errors.Load() + xpathStats.errors.Load() + writeStats.errors.Load(); n > 0 {
		return fmt.Errorf("%d request(s) failed", n)
	}
	if readStats.count.Load()+xpathStats.count.Load() == 0 || writeStats.count.Load() == 0 {
		return fmt.Errorf("no load generated (reads %d, writes %d)",
			readStats.count.Load()+xpathStats.count.Load(), writeStats.count.Load())
	}
	return nil
}

func discoverViews(client *http.Client, base string) ([]string, error) {
	resp, err := client.Get(base + "/v1/views")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/views: status %d", resp.StatusCode)
	}
	var vr server.ViewsResponse
	if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil {
		return nil, err
	}
	names := make([]string, 0, len(vr.Views))
	for _, v := range vr.Views {
		names = append(names, v.Name)
	}
	return names, nil
}

func readView(client *http.Client, base, name string, st *opStats) {
	t0 := time.Now()
	resp, err := client.Get(base + "/v1/views/" + url.PathEscape(name))
	if err != nil {
		st.errors.Add(1)
		return
	}
	defer resp.Body.Close()
	var vr server.ViewResponse
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&vr) != nil {
		st.errors.Add(1)
		return
	}
	st.observe(time.Since(t0))
}

func readXPath(client *http.Client, base, q string, st *opStats) {
	t0 := time.Now()
	resp, err := client.Get(base + "/v1/xpath?q=" + url.QueryEscape(q))
	if err != nil {
		st.errors.Add(1)
		return
	}
	defer resp.Body.Close()
	var xr server.XPathResponse
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&xr) != nil {
		st.errors.Add(1)
		return
	}
	st.observe(time.Since(t0))
}

func writeUpdate(client *http.Client, base, stmt string, st *opStats) {
	t0 := time.Now()
	body, _ := json.Marshal(server.UpdateRequest{Statement: stmt})
	resp, err := client.Post(base+"/v1/update", "application/json", strings.NewReader(string(body)))
	if err != nil {
		st.errors.Add(1)
		return
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var ur server.UpdateResponse
		if json.NewDecoder(resp.Body).Decode(&ur) != nil {
			st.errors.Add(1)
			return
		}
		st.observe(time.Since(t0))
	case http.StatusTooManyRequests:
		// Backpressure is the designed behavior under overload, not an
		// error: count it and back off briefly.
		st.rejected.Add(1)
		time.Sleep(time.Millisecond)
	default:
		st.errors.Add(1)
	}
}
