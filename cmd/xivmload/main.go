// Command xivmload generates load against a running xivm multi-tenant
// serving API (xivm -listen) and reports per-class throughput, latency,
// and error mix — the measurement companion to the serving layer the way
// xivmbench is to the maintenance engine. It is built on the typed
// internal/client package.
//
// Usage:
//
//	xivmload -addr http://localhost:8080 [-tenants 4] [-readers 8] [-writers 2] [-duration 10s]
//	xivmload -selfserve [-tenants 8] [-scale 1] [-burst 32] [-max-batch 32] …
//	xivmload -addr http://leader:8080 -follower-url http://follower:8081 …
//
// With -follower-url the read fraction targets a read-only follower
// (xivm -follow) while writes go to the leader at -addr; the report then
// splits latency per target and includes the maximum replication lag (in
// LSNs) sampled from the follower's repl/status during the run. -verify in
// this mode waits for the follower to converge before asserting.
//
// With -tenants N the tool creates databases t0…tN-1 through the admin
// plane (existing ones are reused) and spreads readers and writers across
// them round-robin; with -tenants 0 it targets whatever databases the
// server already has. Readers mix view queries (discovered per database)
// and XPath queries per -xpath-frac (default 0.5; 1 is an all-XPath run
// against the compiled-query cache); writers cycle update statements
// (-stmt, or a built-in XMark mix), counting 429 backpressure rejections
// separately
// from hard failures. -selfserve starts an in-process registry seeded
// with a generated XMark default document on an ephemeral localhost port
// first — the CI smoke mode, exercising the full HTTP stack with no
// external setup. -verify follows the load with a read-your-writes and
// cross-tenant isolation probe: a uniquely tagged element is inserted
// into each database and must be visible there — and only there.
//
// The exit status is non-zero if any hard error occurred (connection
// failures, 5xx, malformed responses, a failed -verify probe), so a
// smoke run doubles as a check.
//
// -burst N switches writers to bursty submission: each database gets one
// burst writer that first grows N distinct insertion parents and then fires
// N concurrent single-insert updates per wave, waiting for every ack before
// the next wave. The statements in a wave target distinct nodes, so the
// serving shard's planner translates a drained wave into one combined delta
// — the mode EXPERIMENTS.md uses to demonstrate amortized batch
// propagation. -max-batch (with -selfserve) sets the shard's batch cap; 1
// disables batching for a like-for-like per-statement baseline.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"xivm/internal/client"
	"xivm/internal/server"
	"xivm/internal/update"
	"xivm/internal/wal"
	"xivm/internal/xmark"
	"xivm/internal/xpath"
)

type stmtFlag []string

func (m *stmtFlag) String() string     { return strings.Join(*m, "; ") }
func (m *stmtFlag) Set(s string) error { *m = append(*m, s); return nil }

// defaultStatements is a balanced XMark update mix: inserts and deletes
// roughly cancel so a long run does not grow the document unboundedly.
var defaultStatements = []string{
	`insert <person id="pload"><name>Load Person</name><phone>+1 555 0101</phone></person> into /site/people`,
	`for $x in /site/open_auctions/open_auction insert <bidder><date>03/03/2021</date><increase>3.00</increase></bidder>`,
	`delete /site/people/person/phone`,
	`delete /site/open_auctions/open_auction/bidder`,
}

// defaultQueries spans the widened query surface — child spines,
// descendant scans, predicate filters (existence, count, string functions),
// positional steps and sibling axes — so a load run exercises every shape
// the server's compiled-query cache serves.
var defaultQueries = []string{
	`/site/people/person/name`,
	`/site/open_auctions/open_auction/bidder/increase`,
	`//open_auction//increase`,
	`//person[profile][homepage]/name`,
	`//open_auction[count(bidder)>=2]/initial`,
	`/site/open_auctions/open_auction/bidder[1]/increase`,
	`//bidder/following-sibling::current`,
	`//person[starts-with(@id,'person1')]`,
	// Served by the view-rewrite layer when the R-views below cover them:
	// a two-view stitch and a root intersection.
	`//open_auction//bidder//increase`,
	`//open_auction[bidder]//initial`,
}

// selfserveRewriteViews is the ID-complete library -selfserve registers
// alongside the paper's Q1/Q2, sized so the default query mix exercises
// all three rewrite plan shapes (single, stitch, intersection).
var selfserveRewriteViews = []server.ViewSpec{
	{Name: "R1", Pattern: `/site{ID}/people{ID}/person{ID}/name{ID,val}`},
	{Name: "R2", Pattern: `//open_auction{ID}//bidder{ID}`},
	{Name: "R3", Pattern: `//bidder{ID}//increase{ID,val}`},
	{Name: "R4", Pattern: `//open_auction{ID}//initial{ID,val}`},
	{Name: "R5", Pattern: `//open_auction{ID}//increase{ID,val}`},
}

// opStats aggregates one operation class with lock-free hot-path updates.
type opStats struct {
	count    atomic.Int64
	rejected atomic.Int64 // 429 backpressure (writers only)
	errors   atomic.Int64
	totalNS  atomic.Int64
	maxNS    atomic.Int64
}

func (s *opStats) observe(d time.Duration) {
	ns := d.Nanoseconds()
	s.count.Add(1)
	s.totalNS.Add(ns)
	for {
		cur := s.maxNS.Load()
		if ns <= cur || s.maxNS.CompareAndSwap(cur, ns) {
			break
		}
	}
}

func (s *opStats) report(w *strings.Builder, name string, elapsed time.Duration) {
	n := s.count.Load()
	var mean time.Duration
	if n > 0 {
		mean = time.Duration(s.totalNS.Load() / n)
	}
	fmt.Fprintf(w, "%-8s %8d ok  %8.1f/s  mean %-10v max %-10v",
		name, n, float64(n)/elapsed.Seconds(), mean, time.Duration(s.maxNS.Load()))
	if r := s.rejected.Load(); r > 0 {
		fmt.Fprintf(w, "  %d rejected (429)", r)
	}
	if e := s.errors.Load(); e > 0 {
		fmt.Fprintf(w, "  %d ERRORS", e)
	}
	w.WriteByte('\n')
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "xivmload:", err)
		os.Exit(1)
	}
}

func run() error {
	var stmts stmtFlag
	var queries stmtFlag
	addr := flag.String("addr", "", "base URL of a running xivm -listen server (e.g. http://localhost:8080)")
	selfserve := flag.Bool("selfserve", false, "start an in-process multi-tenant server seeded with a generated XMark default document instead of targeting -addr")
	scale := flag.Uint64("scale", 1, "-selfserve: XMark small-document scale factor")
	tenants := flag.Int("tenants", 0, "create databases t0…tN-1 via the admin plane and spread load across them (0: use the server's existing databases)")
	readers := flag.Int("readers", 8, "concurrent reader goroutines")
	writers := flag.Int("writers", 2, "concurrent writer goroutines")
	duration := flag.Duration("duration", 5*time.Second, "load duration")
	burst := flag.Int("burst", 0, "bursty writers: one writer per database fires N concurrent distinct-target inserts per wave and waits for every ack (0: steady -writers mix)")
	maxBatch := flag.Int("max-batch", 0, "-selfserve: shard batch cap (0: server default 32; 1: disable batching)")
	verify := flag.Bool("verify", false, "after load, probe each database for read-your-writes and cross-tenant isolation")
	followerURL := flag.String("follower-url", "", "direct the read fraction at this read-only follower while writes go to the leader at -addr; reports per-target latency and the max replication lag observed")
	xpathFrac := flag.Float64("xpath-frac", 0.5, "fraction of reads that are XPath queries rather than view reads (0..1)")
	flag.Var(&stmts, "stmt", "update statement for writers (repeatable; default: built-in XMark mix)")
	flag.Var(&queries, "xpath", "XPath query for readers (repeatable; default: built-in XMark queries)")
	flag.Parse()
	if len(stmts) == 0 {
		stmts = defaultStatements
	}
	if len(queries) == 0 {
		queries = defaultQueries
	}
	for _, s := range stmts {
		if _, err := update.Parse(s); err != nil {
			return fmt.Errorf("-stmt %q: %w", s, err)
		}
	}
	for _, q := range queries {
		if _, err := xpath.Parse(q); err != nil {
			return fmt.Errorf("-xpath %q: %w", q, err)
		}
	}
	if *xpathFrac < 0 || *xpathFrac > 1 {
		return fmt.Errorf("-xpath-frac %v out of range [0,1]", *xpathFrac)
	}
	xpathPercent := int(*xpathFrac * 100)
	if *selfserve && *tenants == 0 {
		*tenants = 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	base := *addr
	if *selfserve {
		var defaultViews []server.ViewSpec
		for _, name := range []string{"Q1", "Q2"} {
			defaultViews = append(defaultViews, server.ViewSpec{Name: name, Pattern: xmark.View(name).String()})
		}
		defaultViews = append(defaultViews, selfserveRewriteViews...)
		reg, err := server.NewRegistry(server.RegistryConfig{
			Shard:        server.Config{MaxBatch: *maxBatch},
			DefaultDoc:   xmark.GenerateSmall(*scale),
			DefaultViews: defaultViews,
			WAL:          wal.Options{},
		})
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: reg.Handler()}
		go func() { _ = hs.Serve(ln) }()
		defer func() {
			dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = hs.Shutdown(dctx)
			_ = reg.Shutdown(dctx)
		}()
		base = "http://" + ln.Addr().String()
		fmt.Printf("self-serving on %s\n", base)
	}
	if base == "" {
		return fmt.Errorf("-addr or -selfserve required")
	}

	// Two clients: readers retry 429s transparently (there should be none),
	// writers surface them so backpressure is counted, not hidden. With
	// -follower-url the readers target the follower instead — writes (and
	// the admin plane) always address the leader.
	readBase := base
	if *followerURL != "" {
		readBase = strings.TrimRight(*followerURL, "/")
	}
	leader := client.New(base)
	rc := client.New(readBase)
	wc := client.New(base, client.WithRetries(0))
	dbNames, err := resolveTargets(ctx, leader, *tenants)
	if err != nil {
		return err
	}
	targets := make([]target, 0, len(dbNames))
	for _, name := range dbNames {
		vr, err := leader.DB(name).Views(ctx)
		if err != nil {
			return fmt.Errorf("db %s: %w", name, err)
		}
		t := target{name: name, read: rc.DB(name), write: wc.DB(name)}
		for _, v := range vr.Views {
			t.views = append(t.views, v.Name)
		}
		targets = append(targets, t)
	}
	if *followerURL != "" {
		// A freshly started follower attaches tenants as its tailers finish
		// snapshot-first catch-up; wait until every target serves reads.
		if err := waitFollower(ctx, rc, dbNames, 15*time.Second); err != nil {
			return err
		}
		fmt.Printf("reads → %s (follower), writes → %s (leader)\n", readBase, base)
	}
	fmt.Printf("targeting %s: %d databases (%s), %d readers, %d writers, %v\n",
		base, len(targets), strings.Join(dbNames, " "), *readers, *writers, *duration)

	if *burst > 0 {
		// Grow the distinct insertion parents each burst wave targets, so a
		// wave never trips the planner's same-target conflict rule.
		for _, t := range targets {
			for j := 0; j < *burst; j++ {
				if _, err := leader.DB(t.name).Update(ctx, fmt.Sprintf(`insert <bp%d/> into /site/people`, j)); err != nil {
					return fmt.Errorf("burst setup %s: %w", t.name, err)
				}
			}
		}
	}

	var readStats, xpathStats, writeStats opStats
	runCtx, cancel := context.WithTimeout(ctx, *duration)
	defer cancel()

	var wg sync.WaitGroup
	var maxLag atomic.Int64
	if *followerURL != "" {
		// Sample the follower's replication position throughout the run; the
		// max of (leader tip − applied) over all targets is the lag a reader
		// could actually have observed.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for runCtx.Err() == nil {
				for _, name := range dbNames {
					st, err := rc.DB(name).ReplStatus(runCtx)
					if err == nil && st.LastLSN > st.AppliedLSN {
						if lag := int64(st.LastLSN - st.AppliedLSN); lag > maxLag.Load() {
							maxLag.Store(lag)
						}
					}
				}
				select {
				case <-runCtx.Done():
				case <-time.After(50 * time.Millisecond):
				}
			}
		}()
	}
	for r := 0; r < *readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := r; runCtx.Err() == nil; i++ {
				t := targets[i%len(targets)]
				// The read mix follows -xpath-frac deterministically: of
				// every 100 iterations, the first xpathPercent go to XPath.
				if i%100 >= xpathPercent && len(t.views) > 0 {
					readView(runCtx, t, t.views[i%len(t.views)], &readStats)
				} else {
					readXPath(runCtx, t, queries[i%len(queries)], &xpathStats)
				}
			}
		}(r)
	}
	switch {
	case *burst > 0:
		// One burst writer per database: N concurrent distinct-target
		// inserts per wave, every ack collected before the next wave, so
		// the shard's queue holds a whole translatable batch at once.
		for _, t := range targets {
			wg.Add(1)
			go func(t target) {
				defer wg.Done()
				for runCtx.Err() == nil {
					var bw sync.WaitGroup
					for j := 0; j < *burst; j++ {
						bw.Add(1)
						go func(j int) {
							defer bw.Done()
							writeUpdate(runCtx, t, fmt.Sprintf(`insert <c/> into /site/people/bp%d`, j), &writeStats)
						}(j)
					}
					bw.Wait()
				}
			}(t)
		}
	default:
		for w := 0; w < *writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; runCtx.Err() == nil; i++ {
					writeUpdate(runCtx, targets[i%len(targets)], stmts[i%len(stmts)], &writeStats)
				}
			}(w)
		}
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)

	var b strings.Builder
	fmt.Fprintf(&b, "\n%v elapsed\n", elapsed.Round(time.Millisecond))
	if *followerURL != "" {
		fmt.Fprintf(&b, "reads (follower %s):\n", readBase)
	}
	readStats.report(&b, "views", elapsed)
	xpathStats.report(&b, "xpath", elapsed)
	if *followerURL != "" {
		fmt.Fprintf(&b, "writes (leader %s):\n", base)
	}
	writeStats.report(&b, "updates", elapsed)
	if *followerURL != "" {
		fmt.Fprintf(&b, "max observed replication lag: %d LSN(s)\n", maxLag.Load())
	}
	reportRewrite(ctx, &b, base)
	fmt.Print(b.String())

	if n := readStats.errors.Load() + xpathStats.errors.Load() + writeStats.errors.Load(); n > 0 {
		return fmt.Errorf("%d request(s) failed", n)
	}
	if readStats.count.Load()+xpathStats.count.Load() == 0 || writeStats.count.Load() == 0 {
		return fmt.Errorf("no load generated (reads %d, writes %d)",
			readStats.count.Load()+xpathStats.count.Load(), writeStats.count.Load())
	}
	if *verify {
		var converge time.Duration
		if *followerURL != "" {
			// Read-your-writes does not hold across the replication boundary;
			// give the follower a convergence window before asserting.
			converge = 15 * time.Second
		}
		if err := verifyIsolation(ctx, leader, rc, dbNames, converge); err != nil {
			return err
		}
		fmt.Printf("verified: read-your-writes and isolation across %d databases\n", len(dbNames))
	}
	return nil
}

// reportRewrite fetches the server's /v1/metrics and summarizes how the
// XPath read mix was actually served: view-rewrite hits vs tree-walk
// misses, the plan-shape split, and the result cache's hit/invalidation
// balance. Best-effort — an older server without these counters just
// reports nothing.
func reportRewrite(ctx context.Context, b *strings.Builder, base string) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/metrics", nil)
	if err != nil {
		return
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var snap struct {
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
	}
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&snap) != nil {
		return
	}
	c := map[string]int64{}
	for _, cs := range snap.Counters {
		c[cs.Name] = cs.Value
	}
	hits, misses := c["server.xpath.rewrite.hit"], c["server.xpath.rewrite.miss"]
	if hits+misses == 0 {
		return
	}
	fmt.Fprintf(b, "xpath serving: %d view-rewritten (%.1f%%), %d tree-walked; plans %d stitch / %d intersect\n",
		hits, 100*float64(hits)/float64(hits+misses), misses,
		c["server.xpath.rewrite.stitch"], c["server.xpath.rewrite.intersect"])
	fmt.Fprintf(b, "result cache: %d hits, %d entries invalidated by the delta stream\n",
		c["server.xpath.rewrite.cache_hit"], c["server.xpath.rewrite.cache_invalidate"])
}

// waitFollower polls the follower until every target database is attached
// and serving reads (its tailer finished snapshot-first catch-up).
func waitFollower(ctx context.Context, rc *client.Client, names []string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for _, name := range names {
		for {
			if _, err := rc.DB(name).Views(ctx); err == nil {
				break
			} else if time.Now().After(deadline) {
				return fmt.Errorf("follower never attached db %s: %w", name, err)
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(100 * time.Millisecond):
			}
		}
	}
	return nil
}

type target struct {
	name  string
	views []string
	read  *client.DB
	write *client.DB
}

// resolveTargets creates t0…tN-1 through the admin plane (tolerating ones
// that already exist) or, with n == 0, discovers the server's databases.
func resolveTargets(ctx context.Context, c *client.Client, n int) ([]string, error) {
	if n == 0 {
		stats, err := c.ListDBs(ctx)
		if err != nil {
			return nil, err
		}
		if len(stats) == 0 {
			return nil, fmt.Errorf("server has no databases (pass -tenants N to create some)")
		}
		names := make([]string, 0, len(stats))
		for _, st := range stats {
			names = append(names, st.Name)
		}
		return names, nil
	}
	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("t%d", i)
		_, err := c.CreateDB(ctx, client.CreateDB{Name: name})
		var apiErr *client.APIError
		if err != nil && !(errors.As(err, &apiErr) && apiErr.Code == server.CodeDBExists) {
			return nil, fmt.Errorf("create db %s: %w", name, err)
		}
		names = append(names, name)
	}
	return names, nil
}

// verifyIsolation inserts a uniquely tagged element into every database via
// wc (the leader), then checks read-your-writes (the tag is visible where
// written) and cross-tenant isolation (it is visible nowhere else) via rc —
// the same server, or a follower given a convergence window first.
func verifyIsolation(ctx context.Context, wc, rc *client.Client, names []string, converge time.Duration) error {
	probe := func(name string) string { return fmt.Sprintf("/site/probe-%s", name) }
	for _, name := range names {
		stmt := fmt.Sprintf(`insert <probe-%s/> into /site`, name)
		if _, err := wc.DB(name).Update(ctx, stmt); err != nil {
			return fmt.Errorf("verify %s: %w", name, err)
		}
	}
	if converge > 0 {
		deadline := time.Now().Add(converge)
		for _, name := range names {
			for {
				xr, err := rc.DB(name).XPath(ctx, probe(name))
				if err == nil && len(xr.Matches) == 1 {
					break
				}
				if time.Now().After(deadline) {
					return fmt.Errorf("verify %s: probe never converged on the follower", name)
				}
				select {
				case <-ctx.Done():
					return ctx.Err()
				case <-time.After(50 * time.Millisecond):
				}
			}
		}
	}
	for _, name := range names {
		for _, other := range names {
			xr, err := rc.DB(name).XPath(ctx, probe(other))
			if err != nil {
				return fmt.Errorf("verify %s: %w", name, err)
			}
			if other == name && len(xr.Matches) != 1 {
				return fmt.Errorf("verify %s: wrote probe, read %d matches (want 1)", name, len(xr.Matches))
			}
			if other != name && len(xr.Matches) != 0 {
				return fmt.Errorf("verify %s: sees %d probe(s) written to %s (want 0)", name, len(xr.Matches), other)
			}
			if xr.Tenant != name {
				return fmt.Errorf("verify %s: response stamped tenant %q", name, xr.Tenant)
			}
		}
	}
	return nil
}

func readView(ctx context.Context, t target, name string, st *opStats) {
	t0 := time.Now()
	if _, err := t.read.View(ctx, name); err != nil {
		countErr(ctx, st)
		return
	}
	st.observe(time.Since(t0))
}

func readXPath(ctx context.Context, t target, q string, st *opStats) {
	t0 := time.Now()
	if _, err := t.read.XPath(ctx, q); err != nil {
		countErr(ctx, st)
		return
	}
	st.observe(time.Since(t0))
}

func writeUpdate(ctx context.Context, t target, stmt string, st *opStats) {
	t0 := time.Now()
	if _, err := t.write.Update(ctx, stmt); err != nil {
		var apiErr *client.APIError
		if errors.As(err, &apiErr) && apiErr.IsRetryable() {
			// Backpressure is the designed behavior under overload, not an
			// error: count it and back off briefly.
			st.rejected.Add(1)
			time.Sleep(time.Millisecond)
			return
		}
		countErr(ctx, st)
		return
	}
	st.observe(time.Since(t0))
}

// countErr records a hard failure unless it is just the run deadline
// cancelling an in-flight request.
func countErr(ctx context.Context, st *opStats) {
	if ctx.Err() != nil {
		return
	}
	st.errors.Add(1)
}
