module xivm

go 1.22
