package xivm

import (
	"os"
	"strconv"
	"testing"

	"xivm/internal/bench"
)

// benchBytes returns the document size benchmarks use; override with
// XIVM_BENCH_BYTES (e.g. 10485760 for the paper's 10MB class).
func benchBytes() int {
	if s := os.Getenv("XIVM_BENCH_BYTES"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return bench.DefaultBytes
}

func smallBytes() int { return benchBytes() / 2 }

func scaleSeries() []int {
	n := benchBytes()
	return []int{n / 4, n / 2, n, n * 2}
}

// BenchmarkFig18InsertBreakdown — Figure 18: per-phase insert propagation
// breakdown for views Q1, Q3, Q6 across update classes.
func BenchmarkFig18InsertBreakdown(b *testing.B) {
	for _, vn := range []string{"Q1", "Q3", "Q6"} {
		b.Run(vn, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bench.RunBreakdown(vn, true, benchBytes())
			}
		})
	}
}

// BenchmarkFig19DeleteBreakdown — Figure 19: per-phase delete propagation
// breakdown for views Q1, Q3, Q6.
func BenchmarkFig19DeleteBreakdown(b *testing.B) {
	for _, vn := range []string{"Q1", "Q3", "Q6"} {
		b.Run(vn, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bench.RunBreakdown(vn, false, benchBytes())
			}
		})
	}
}

// BenchmarkFig20AllViewsInsert — Figure 20: total insert propagation time
// for all 35 view-update pairs.
func BenchmarkFig20AllViewsInsert(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunAllPairs(true, benchBytes())
	}
}

// BenchmarkFig21AllViewsDelete — Figure 21: total delete propagation time
// for all 35 view-update pairs.
func BenchmarkFig21AllViewsDelete(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunAllPairs(false, benchBytes())
	}
}

// BenchmarkFig22PathDepth100KB — Figure 22: deletion X1_L of varying depth
// against view Q1, 100KB-class document.
func BenchmarkFig22PathDepth100KB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunPathDepth(bench.SmallBytes)
	}
}

// BenchmarkFig23PathDepth10MB — Figure 23: same series on the large
// document class.
func BenchmarkFig23PathDepth10MB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunPathDepth(benchBytes())
	}
}

// BenchmarkFig24Annotations — Figure 24: fixed update X1_L against Q1
// variants with varying val/cont annotations.
func BenchmarkFig24Annotations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunAnnotations(smallBytes())
	}
}

// BenchmarkFig25Scalability — Figure 25: view Q1, update A6_A, documents of
// increasing size (insert and delete panels).
func BenchmarkFig25Scalability(b *testing.B) {
	b.Run("insert", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bench.RunScalability(scaleSeries(), true)
		}
	})
	b.Run("delete", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bench.RunScalability(scaleSeries(), false)
		}
	})
}

// BenchmarkFig26InsertVsFull — Figure 26: PINT/PIMT vs full recomputation.
func BenchmarkFig26InsertVsFull(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunVsFull(true, benchBytes())
	}
}

// BenchmarkFig27DeleteVsFull — Figure 27: PDDT/PDMT vs full recomputation.
func BenchmarkFig27DeleteVsFull(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunVsFull(false, benchBytes())
	}
}

// BenchmarkFig28VsIVMA — Figure 28: one-shot bulk propagation vs the
// node-at-a-time IVMA competitor, view Q1, 100KB-class document.
func BenchmarkFig28VsIVMA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunVsIVMA(bench.SmallBytes)
	}
}

// BenchmarkFig29SnowcapsQ4 — Figure 29: snowcaps vs leaves, view Q4.
func BenchmarkFig29SnowcapsQ4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunSnowcapsVsLeaves("Q4", scaleSeries())
	}
}

// BenchmarkFig30SnowcapsQ6 — Figure 30: snowcaps vs leaves, view Q6.
func BenchmarkFig30SnowcapsQ6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunSnowcapsVsLeaves("Q6", scaleSeries())
	}
}

// BenchmarkFig31SnowcapSplitQ4 — Figure 31: (R)/(U) split, view Q4.
func BenchmarkFig31SnowcapSplitQ4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunSnowcapSplit("Q4", scaleSeries())
	}
}

// BenchmarkFig32SnowcapSplitQ6 — Figure 32: (R)/(U) split, view Q6.
func BenchmarkFig32SnowcapSplitQ6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunSnowcapSplit("Q6", scaleSeries())
	}
}

var rulePercents = []int{20, 40, 60, 80, 100}

// BenchmarkFig33RuleO1 — Figure 33: reduction rule O1 on/off.
func BenchmarkFig33RuleO1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunRule("O1", rulePercents, bench.SmallBytes)
	}
}

// BenchmarkFig34RuleO3 — Figure 34: reduction rule O3 on/off.
func BenchmarkFig34RuleO3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunRule("O3", rulePercents, bench.SmallBytes)
	}
}

// BenchmarkFig35RuleI5 — Figure 35: reduction rule I5 on/off.
func BenchmarkFig35RuleI5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunRule("I5", rulePercents, bench.SmallBytes)
	}
}

// BenchmarkAblationPruning — DESIGN.md §4: term pruning on/off.
func BenchmarkAblationPruning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunPruningAblation(smallBytes())
	}
}

// BenchmarkAblationJoin — DESIGN.md §4: structural vs nested-loop join.
func BenchmarkAblationJoin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunJoinAblation(smallBytes())
	}
}

// BenchmarkAblationLazy — eager vs deferred propagation over a churn-heavy
// statement stream.
func BenchmarkAblationLazy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunLazyAblation(smallBytes())
	}
}

// BenchmarkAblationHolistic — binary structural joins vs the holistic path
// join evaluator on full-view materialization.
func BenchmarkAblationHolistic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunHolisticAblation(smallBytes())
	}
}
