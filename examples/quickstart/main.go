// Quickstart: materialize a view over an XML document, apply an insertion
// and a deletion, and watch the engine keep the view current without
// recomputing it — the end-to-end flow of the paper's Figure 1.
package main

import (
	"fmt"
	"log"

	"xivm/internal/core"
	"xivm/internal/update"
	"xivm/internal/view"
	"xivm/internal/xmltree"
)

const document = `
<library>
  <shelf floor="1">
    <book year="2001"><title>A Study of Trees</title><author>Ann</author></book>
    <book year="2011"><title>Algebra at Work</title><author>Bob</author></book>
  </shelf>
  <shelf floor="2">
    <book year="2011"><title>Views in Depth</title><author>Ann</author></book>
  </shelf>
</library>`

func main() {
	doc, err := xmltree.ParseString(document)
	if err != nil {
		log.Fatal(err)
	}

	// Views are written in the paper's conjunctive XQuery dialect and
	// compiled to tree patterns.
	def, err := view.Compile(`
for $b in doc("lib")//book, $t in $b/title
return <r><id>{id($b)}</id><title>{string($t)}</title></r>`)
	if err != nil {
		log.Fatal(err)
	}

	engine := core.NewEngine(doc, core.Options{})
	mv, err := engine.AddView("titles", def.Pattern)
	if err != nil {
		log.Fatal(err)
	}
	show := func(when string) {
		fmt.Printf("--- %s: %d rows\n", when, mv.View.Len())
		for _, r := range mv.View.Rows() {
			fmt.Printf("  book %v  title=%q\n", r.Entries[0].ID, r.Entries[1].Val)
		}
	}
	show("initial view")

	// A statement-level insertion: every floor-1 shelf gains a book. The
	// engine propagates the whole statement in one algebraic pass (PINT).
	ins := update.MustParse(`for $s in /library/shelf[@floor="1"]
insert <book year="2024"><title>Fresh Ink</title><author>Cy</author></book>`)
	rep, err := engine.ApplyStatement(ins)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninsert: %d targets, +%d rows, %d/%d terms evaluated\n",
		rep.Targets, rep.Views[0].RowsAdded, rep.Views[0].TermsSurvived, rep.Views[0].TermsTotal)
	show("after insert")

	// A statement-level deletion (PDDT/PDMT).
	del := update.MustParse(`delete //book[author="Ann"]`)
	rep, err = engine.ApplyStatement(del)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndelete: %d targets, -%d rows\n", rep.Targets, rep.Views[0].RowsRemoved)
	show("after delete")

	// The maintained view always matches recomputation from scratch.
	fmt.Printf("\nconsistent with full recomputation: %v\n", engine.CheckView(mv))
}
