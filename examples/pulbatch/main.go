// Pulbatch: optimizing update sequences before propagation (Section 5). A
// batch of statement-level updates is expanded into elementary operations
// (CP), reduced with the rules O1/O3/I5 (OR), and only then propagated to
// the maintained views — the Figure 13 pipeline. The program shows the
// operation counts before and after reduction, conflict detection between
// parallel batches, and the end-state equivalence of the two plans.
package main

import (
	"fmt"
	"log"

	"xivm/internal/core"
	"xivm/internal/pattern"
	"xivm/internal/pulopt"
	"xivm/internal/update"
	"xivm/internal/xmark"
	"xivm/internal/xmltree"
)

func build() (*core.Engine, *core.ManagedView) {
	src := xmark.Generate(xmark.Config{TargetBytes: 80 << 10, Seed: 3})
	doc, err := xmltree.ParseString(src)
	if err != nil {
		log.Fatal(err)
	}
	e := core.NewEngine(doc, core.Options{})
	mv, err := e.AddView("names", pattern.MustParse(`//person{ID}/name{ID,val}`))
	if err != nil {
		log.Fatal(err)
	}
	return e, mv
}

func main() {
	// A redundant batch: insert names everywhere, insert more names under
	// phone-owners, then delete the phone-owners entirely — the first two
	// statements are (partially) wasted work that the rules reclaim.
	stmts := []*update.Statement{
		update.MustParse(`for $p in /site/people/person insert <name>tag</name>`),
		update.MustParse(`for $p in /site/people/person[phone] insert <name>extra</name>`),
		update.MustParse(`delete /site/people/person[phone]`),
	}

	e1, v1 := build()
	ops, err := pulopt.FromStatements(e1, stmts)
	if err != nil {
		log.Fatal(err)
	}
	reduced := pulopt.Reduce(ops)
	fmt.Printf("elementary operations: %d before reduction, %d after (O1/O3/I5)\n",
		len(ops), len(reduced))

	t1, err := pulopt.Apply(e1, ops)
	if err != nil {
		log.Fatal(err)
	}
	e2, v2 := build()
	ops2, err := pulopt.FromStatements(e2, stmts)
	if err != nil {
		log.Fatal(err)
	}
	t2, err := pulopt.Apply(e2, pulopt.Reduce(ops2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("propagation: original %v, reduced %v\n", t1, t2)

	r1, r2 := v1.View.Rows(), v2.View.Rows()
	same := len(r1) == len(r2)
	for i := 0; same && i < len(r1); i++ {
		same = r1[i].Key() == r2[i].Key() && r1[i].Count == r2[i].Count
	}
	fmt.Printf("views identical under both plans: %v (%d rows)\n", same, len(r1))
	fmt.Printf("consistent with recomputation: %v\n", e2.CheckView(v2))

	// Conflict detection between batches meant to run in parallel.
	persons := e2.Doc.Root.ElementChildren()[0].ElementChildren()
	p0 := persons[0]
	forest, _ := xmltree.ParseForest(`<name>par</name>`)
	d1 := pulopt.Seq{{Kind: pulopt.Del, Target: p0.ID}}
	d2 := pulopt.Seq{{Kind: pulopt.InsLast, Target: p0.ID, Forest: forest}}
	_, conflicts := pulopt.Integrate(d1, d2)
	fmt.Printf("\nparallel PULs on person0: %d conflict(s)\n", len(conflicts))
	for _, c := range conflicts {
		fmt.Println("  ", c)
	}
}
