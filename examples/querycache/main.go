// Querycache: answering queries from maintained views. ID-complete views
// are materialized once and kept current by the engine; incoming tree-
// pattern queries are then answered from the views alone — single-view
// rewrites with residual ID/value filters, or two views stitched on a
// shared node's structural ID — without touching the base document, and
// stay correct across updates.
//
// Every rewritten answer is cross-checked against direct evaluation at
// CONTENT level — row identity, stored values/contents, and derivation
// counts, in order — not just row counts: a rewrite that returns the right
// number of rows with empty values is exactly the bug a count-only check
// waves through. Any mismatch makes the example exit non-zero.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"xivm/internal/algebra"
	"xivm/internal/core"
	"xivm/internal/pattern"
	"xivm/internal/rewrite"
	"xivm/internal/update"
	"xivm/internal/xmark"
	"xivm/internal/xmltree"
)

// diffRows reports the first content-level difference between a rewritten
// answer and direct evaluation, or "" when they agree exactly.
func diffRows(rows, direct []algebra.Row) string {
	if len(rows) != len(direct) {
		return fmt.Sprintf("row count %d vs %d", len(rows), len(direct))
	}
	for i := range rows {
		a, b := rows[i], direct[i]
		if a.Key() != b.Key() {
			return fmt.Sprintf("row %d identity %q vs %q", i, a.Key(), b.Key())
		}
		if a.Count != b.Count {
			return fmt.Sprintf("row %d count %d vs %d", i, a.Count, b.Count)
		}
		if len(a.Entries) != len(b.Entries) {
			return fmt.Sprintf("row %d width %d vs %d", i, len(a.Entries), len(b.Entries))
		}
		for j := range a.Entries {
			if a.Entries[j].Val != b.Entries[j].Val {
				return fmt.Sprintf("row %d entry %d val %q vs %q", i, j, a.Entries[j].Val, b.Entries[j].Val)
			}
			if a.Entries[j].Cont != b.Entries[j].Cont {
				return fmt.Sprintf("row %d entry %d cont %q vs %q", i, j, a.Entries[j].Cont, b.Entries[j].Cont)
			}
		}
	}
	return ""
}

func main() {
	src := xmark.Generate(xmark.Config{TargetBytes: 60 << 10, Seed: 5})
	doc, err := xmltree.ParseString(src)
	if err != nil {
		log.Fatal(err)
	}
	engine := core.NewEngine(doc, core.Options{})

	// An ID-complete view library: small patterns that compose. Names are
	// registered in sorted order so runs are reproducible — map iteration
	// order would otherwise shuffle both the printout and the planner's
	// tie-breaks between equal-cost views.
	lib := map[string]string{
		"auction-bidder":   `//open_auction{ID}//bidder{ID}`,
		"bidder-increase":  `//bidder{ID}//increase{ID,val}`,
		"person-name":      `//person{ID}//name{ID,val}`,
		"auction-increase": `//open_auction{ID}//increase{ID}`,
	}
	names := make([]string, 0, len(lib))
	for name := range lib {
		names = append(names, name)
	}
	sort.Strings(names)
	var views []*rewrite.View
	for _, name := range names {
		mv, err := engine.AddView(name, pattern.MustParse(lib[name]))
		if err != nil {
			log.Fatal(err)
		}
		views = append(views, &rewrite.View{Name: name, Pattern: mv.Pattern, Rows: mv.View})
		fmt.Printf("view %-18s %-38s %5d rows\n", name, mv.Pattern, mv.View.Len())
	}

	failed := false
	ask := func(qs string) {
		q := pattern.MustParse(qs)
		rows, plan, err := rewrite.Answer(q, views)
		if err != nil {
			fmt.Printf("\nQ: %s\n   %v\n", qs, err)
			return
		}
		// Cross-check against direct evaluation on the live document.
		direct := algebra.Materialize(engine.Doc, q)
		status := "MATCHES direct evaluation (ids, values, counts)"
		if d := diffRows(rows, direct); d != "" {
			status = "MISMATCH: " + d
			failed = true
		}
		fmt.Printf("\nQ: %s\n   %s → %d rows, %s\n", qs, plan.Explain(), len(rows), status)
	}

	queries := []string{
		`//open_auction{ID}//bidder{ID}`,               // single view, exact
		`//open_auction{ID}/bidder{ID}`,                // residual ≺ filter on IDs
		`//bidder{ID}//increase{ID,val}[val="4.50"]`,   // residual value filter
		`//open_auction{ID}//bidder{ID}//increase{ID}`, // two views stitched on bidder
		`//person{ID}//phone{ID}`,                      // not answerable from the library
	}
	for _, q := range queries {
		ask(q)
	}

	// The views stay queryable across updates — the engine maintains them,
	// and the rewrites keep matching direct evaluation.
	fmt.Println("\napplying updates…")
	for _, stmt := range []string{
		`for $b in /site/open_auctions/open_auction/bidder insert <increase>4.50</increase>`,
		`delete /site/open_auctions/open_auction[privacy]/bidder`,
	} {
		if _, err := engine.ApplyStatement(update.MustParse(stmt)); err != nil {
			log.Fatal(err)
		}
	}
	for _, q := range queries[:4] {
		ask(q)
	}
	if failed {
		fmt.Println("\nFAIL: at least one rewrite diverged from direct evaluation")
		os.Exit(1)
	}
}
