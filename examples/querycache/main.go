// Querycache: answering queries from maintained views. ID-complete views
// are materialized once and kept current by the engine; incoming tree-
// pattern queries are then answered from the views alone — single-view
// rewrites with residual ID/value filters, or two views stitched on a
// shared node's structural ID — without touching the base document, and
// stay correct across updates.
package main

import (
	"fmt"
	"log"

	"xivm/internal/algebra"
	"xivm/internal/core"
	"xivm/internal/pattern"
	"xivm/internal/rewrite"
	"xivm/internal/update"
	"xivm/internal/xmark"
	"xivm/internal/xmltree"
)

func main() {
	src := xmark.Generate(xmark.Config{TargetBytes: 60 << 10, Seed: 5})
	doc, err := xmltree.ParseString(src)
	if err != nil {
		log.Fatal(err)
	}
	engine := core.NewEngine(doc, core.Options{})

	// An ID-complete view library: small patterns that compose.
	lib := map[string]string{
		"auction-bidder":   `//open_auction{ID}//bidder{ID}`,
		"bidder-increase":  `//bidder{ID}//increase{ID,val}`,
		"person-name":      `//person{ID}//name{ID,val}`,
		"auction-increase": `//open_auction{ID}//increase{ID}`,
	}
	var views []*rewrite.View
	for name, srcPat := range lib {
		mv, err := engine.AddView(name, pattern.MustParse(srcPat))
		if err != nil {
			log.Fatal(err)
		}
		views = append(views, &rewrite.View{Name: name, Pattern: mv.Pattern, Rows: mv.View})
		fmt.Printf("view %-18s %-38s %5d rows\n", name, mv.Pattern, mv.View.Len())
	}

	ask := func(qs string) {
		q := pattern.MustParse(qs)
		rows, plan, err := rewrite.Answer(q, views)
		if err != nil {
			fmt.Printf("\nQ: %s\n   %v\n", qs, err)
			return
		}
		// Cross-check against direct evaluation on the live document.
		direct := algebra.Materialize(engine.Doc, q)
		status := "MATCHES direct evaluation"
		if len(rows) != len(direct) {
			status = fmt.Sprintf("MISMATCH (%d vs %d)", len(rows), len(direct))
		}
		fmt.Printf("\nQ: %s\n   %s → %d rows, %s\n", qs, plan.Explain(), len(rows), status)
	}

	queries := []string{
		`//open_auction{ID}//bidder{ID}`,               // single view, exact
		`//open_auction{ID}/bidder{ID}`,                // residual ≺ filter on IDs
		`//bidder{ID}//increase{ID,val}[val="4.50"]`,   // residual value filter
		`//open_auction{ID}//bidder{ID}//increase{ID}`, // two views stitched on bidder
		`//person{ID}//phone{ID}`,                      // not answerable from the library
	}
	for _, q := range queries {
		ask(q)
	}

	// The views stay queryable across updates — the engine maintains them,
	// and the rewrites keep matching direct evaluation.
	fmt.Println("\napplying updates…")
	for _, stmt := range []string{
		`for $b in /site/open_auctions/open_auction/bidder insert <increase>4.50</increase>`,
		`delete /site/open_auctions/open_auction[privacy]/bidder`,
	} {
		if _, err := engine.ApplyStatement(update.MustParse(stmt)); err != nil {
			log.Fatal(err)
		}
	}
	for _, q := range queries[:4] {
		ask(q)
	}
}
