// Catalog: DTD-gated maintenance (Section 3.3). A product catalog is
// described by a DTD-as-CFG; every insertion is first screened by the fast
// ∆-table co-occurrence constraints derived from the grammar, then by full
// content-model validation, and only schema-preserving updates reach the
// maintained view.
package main

import (
	"fmt"
	"log"

	"xivm/internal/core"
	"xivm/internal/dtd"
	"xivm/internal/pattern"
	"xivm/internal/update"
	"xivm/internal/xmltree"
	"xivm/internal/xpath"
)

const grammar = `
catalog -> product+
product -> name, price, STOCK?
STOCK   -> quantity, warehouse
name -> #text
price -> #text
quantity -> #text
warehouse -> #text
`

const document = `
<catalog>
  <product><name>Clock</name><price>30</price></product>
  <product><name>Violin</name><price>900</price>
    <quantity>2</quantity><warehouse>Lille</warehouse></product>
</catalog>`

func main() {
	g := dtd.MustParse(grammar)
	fmt.Println("derived ∆+ constraints:")
	for _, c := range g.Constraints() {
		fmt.Println("  ", c)
	}

	doc, err := xmltree.ParseString(document)
	if err != nil {
		log.Fatal(err)
	}
	if err := g.ValidateDocument(doc); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ninitial document valid ✓")

	engine := core.NewEngine(doc, core.Options{})
	mv, err := engine.AddView("prices", pattern.MustParse(`//product{ID}/price{ID,val}`))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("view prices: %d rows\n", mv.View.Len())

	apply := func(stmt string) {
		fmt.Printf("\n>> %s\n", stmt)
		st := update.MustParse(stmt)
		if st.Kind == update.Insert {
			// Fast pre-check on the would-be ∆+ tables (Examples 3.9/3.10).
			if bad := g.CheckDeltaConstraints(dtd.DeltaSizes(st.Forest)); len(bad) > 0 {
				fmt.Printf("   rejected by ∆ constraints: %v\n", bad)
				return
			}
			// Full content-model check at each target.
			for _, target := range xpath.Eval(engine.Doc, st.Target) {
				if err := g.CheckInsert(target, st.Forest); err != nil {
					fmt.Printf("   rejected: %v\n", err)
					return
				}
			}
		}
		rep, err := engine.ApplyStatement(st)
		if err != nil {
			fmt.Printf("   failed: %v\n", err)
			return
		}
		fmt.Printf("   applied: +%d rows, view now %d rows\n",
			rep.Views[0].RowsAdded, mv.View.Len())
		if err := g.ValidateDocument(engine.Doc); err != nil {
			log.Fatalf("document became invalid: %v", err)
		}
	}

	// A complete, valid product: accepted and propagated.
	apply(`insert <product><name>Atlas</name><price>55</price></product> into /catalog`)

	// A product missing its mandatory price: caught by the ∆ constraint
	// before any evaluation happens.
	apply(`insert <product><name>Broken</name></product> into /catalog`)

	// Structurally complete product but inserted in the wrong place: the
	// content-model context check rejects it.
	apply(`insert <product><name>Nested</name><price>1</price></product> into /catalog/product`)

	fmt.Printf("\nview still consistent with recomputation: %v\n", engine.CheckView(mv))
}
