// Auction: the paper's motivating workload. An XMark-style auction site
// document is generated, all seven benchmark views (Q1–Q17) are
// materialized, and a mixed stream of Appendix A insertions and deletions
// runs through the engine. After every statement each view is checked
// against full recomputation, and the incremental-vs-recompute times are
// reported — the Figure 26/27 story as a runnable program.
package main

import (
	"fmt"
	"log"
	"time"

	"xivm/internal/algebra"
	"xivm/internal/core"
	"xivm/internal/obs"
	"xivm/internal/update"
	"xivm/internal/xmark"
	"xivm/internal/xmltree"
)

func main() {
	src := xmark.Generate(xmark.Config{TargetBytes: 150 << 10, Seed: 7})
	doc, err := xmltree.ParseString(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auction site: %d bytes, %d nodes\n", len(src), doc.Size())

	engine := core.New(doc, core.WithMetrics(obs.New()))
	for _, name := range xmark.ViewNames() {
		mv, err := engine.AddView(name, xmark.View(name))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  view %-4s %-60s %5d rows\n", name, mv.Pattern, mv.View.Len())
	}

	stream := []*update.Statement{
		xmark.UpdateByName("X1_L").InsertStatement(),  // names under every person
		xmark.UpdateByName("X2_L").InsertStatement(),  // increases under every bidder
		xmark.UpdateByName("B5_LB").InsertStatement(), // items under named items
		xmark.UpdateByName("A7_O").DeleteStatement(),  // drop persons with phone or homepage
		xmark.UpdateByName("X3_A").DeleteStatement(),  // drop bidders of private auctions
		xmark.UpdateByName("X8_AO").InsertStatement(), // items under described items
		xmark.UpdateByName("B3_LB").DeleteStatement(), // drop bidders of reserved auctions
	}

	var incTotal time.Duration
	for i, st := range stream {
		rep, err := engine.ApplyStatement(st)
		if err != nil {
			log.Fatal(err)
		}
		t := rep.Timings()
		incTotal += t.Total()
		added, removed, modified := 0, 0, 0
		for _, vr := range rep.Views {
			added += vr.RowsAdded
			removed += vr.RowsRemoved
			modified += vr.RowsModified
		}
		fmt.Printf("\n[%d] %s\n    targets=%d  +%d/-%d/~%d rows across views  total=%v\n",
			i+1, st, rep.Targets, added, removed, modified, t.Total())
		for _, mv := range engine.Views {
			if !engine.CheckView(mv) {
				log.Fatalf("view %s diverged from recomputation after %s", mv.Name, st)
			}
		}
	}

	// What would the same stream have cost with full recomputation? A
	// system without incremental maintenance re-evaluates every view by
	// scanning the document after each statement.
	recomputeStart := time.Now()
	for _, mv := range engine.Views {
		algebra.Materialize(engine.Doc, mv.Pattern)
	}
	oneRecompute := time.Since(recomputeStart)
	fmt.Printf("\nincremental maintenance of %d statements: %v\n", len(stream), incTotal)
	fmt.Printf("one full recomputation of all views:      %v (×%d statements ≈ %v)\n",
		oneRecompute, len(stream), oneRecompute*time.Duration(len(stream)))
	fmt.Println("all views verified against recomputation after every statement ✓")

	// The engine kept count of everything it did; dump the counters.
	fmt.Println("\nengine metrics:")
	for _, c := range engine.Metrics().Snapshot().Counters {
		fmt.Printf("  %-28s %d\n", c.Name, c.Value)
	}
}
